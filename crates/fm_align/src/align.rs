//! The tiered sequence-alignment engine over linearized functions.
//!
//! This is the "Alignment" stage shared by FMSA and SalSSA (Figure 1 of the
//! paper). The textbook Needleman–Wunsch formulation is quadratic in time and
//! *space* over the sequence lengths, which is exactly why register demotion
//! (which roughly doubles the sequences) quadruples both the running time and
//! the peak memory of the baseline — the effect measured in Figures 22
//! and 23. Because the planner speculatively scores every ranked candidate
//! pair, that quadratic matrix used to be allocated once per candidate; this
//! module replaces it with three tiers that never materialize the full
//! matrix:
//!
//! * [`align_score`] — score only: a two-row rolling DP over the *shorter*
//!   sequence. O(min(n, m)) live memory, no traceback. This is the tier for
//!   callers that only need the number of mergeable matches (benchmarking,
//!   profitability profiling, and the planner's admissible pre-filter).
//! * [`align`] — full traceback in linear space: a Hirschberg-style
//!   divide-and-conquer over the rows of the DP. Unlike classic Hirschberg
//!   (which returns *an* optimal alignment), the recursion here is seeded
//!   with true global DP rows, so every traceback decision is evaluated
//!   against the same scores the full matrix would have held — the returned
//!   [`Alignment::pairs`] are **byte-identical** to the historical
//!   full-matrix traceback (enforced by the differential proptests against
//!   [`align_full_matrix`]). Peak live memory is O(m · log n) — the rolling
//!   rows plus one seed row per live recursion level — instead of O(n · m).
//!   Time is O(n · m) cells in the worst case: once the first base strip
//!   fixes the walk's value, every later strip clamps its column range to a
//!   meet-in-the-middle split column (the leftmost seed column whose score
//!   can still reach the walk's value), restoring the strict Hirschberg
//!   work bound that the exact-seed recursion previously gave up on
//!   right-edge-hugging adversarial paths.
//! * [`align_full_matrix`] — the original quadratic implementation, kept as
//!   the reference oracle for the differential tests and as the baseline of
//!   the `alignment` criterion group. Production paths never call it.
//!
//! On top of the tiers sits an optional **diagonal band** ([`Band`],
//! [`align_banded`], [`align_score_banded`]): the DP is restricted to a
//! corridor around the main diagonal sized from the pair's fingerprint
//! distance. Cells outside the corridor keep stale values — always *lower
//! bounds* of the true scores, because DP rows only grow downwards — so the
//! banded corner score `S` is itself a lower bound, and it is provably exact
//! whenever `S ≥ min(n, m) − w` (at most `w` entries of the shorter side
//! unmatched means some optimal path stays inside the corridor). When that
//! saturation check fails the banded pass is discarded and the exact tier
//! runs, so banded results are **byte-identical** to unbanded ones at any
//! band width (proptest-enforced); the band only decides how much work the
//! happy path does.
//!
//! Two shared optimizations feed all tiers:
//!
//! * **mergeability classes** — [`mergeable`] is an equivalence relation
//!   (every arm compares a feature tuple for equality), so each sequence
//!   entry is interned to a small integer class once per pair and the DP
//!   inner loop becomes a single `u32` comparison instead of a structural
//!   check that allocated operand-type vectors per cell. Entries that are
//!   mergeable with nothing (phi-nodes, landing pads — which [`linearize`]
//!   never emits, but the API accepts arbitrary slices) receive unique
//!   sentinel classes. The per-function half of that work is cached: each
//!   function's interned [`ClassTable`] lives in the `ssa_ir::Function`
//!   analysis slot (invalidated by every mutating method, like the
//!   structural key), so classifying a pair merges two precomputed tables —
//!   O(k) hash operations over the *distinct* classes — instead of
//!   re-hashing all O(n + m) entries per candidate.
//! * **common prefix/suffix trimming** — runs of end-to-end mergeable
//!   entries are matched without running the DP at all. Suffix trimming is
//!   canonical-path-exact (the greedy traceback provably starts with the
//!   diagonal move whenever the last entries are mergeable), so [`align`]
//!   applies it. Prefix trimming preserves the optimal *score* but not the
//!   canonical tie-breaking (the traceback may prefer a later partner for
//!   the first entry), so only the score-only tier applies it.
//!
//! Each thread reuses one [`AlignScratch`] arena across calls — under the
//! planner's rayon scoring batches, speculative scoring therefore performs
//! no per-pair DP allocations in steady state.
//!
//! [`linearize`]: crate::linearize::linearize

use crate::linearize::{linearize, mergeable, SeqEntry};
use ssa_ir::{BinOp, CastKind, Function, ICmpPred, InstKind, Type};
use ssa_passes::Target;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// One element of an alignment result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignedPair {
    /// A pair of entries that matched and will be merged into one entity.
    Match(SeqEntry, SeqEntry),
    /// An entry that exists only in the first function.
    OnlyLeft(SeqEntry),
    /// An entry that exists only in the second function.
    OnlyRight(SeqEntry),
}

/// Instrumentation of one alignment run (drives Figures 22 and 23).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignmentStats {
    /// Length of the first sequence.
    pub len_left: usize,
    /// Length of the second sequence.
    pub len_right: usize,
    /// Number of matched pairs.
    pub matches: usize,
    /// Mergeability comparisons performed (time proxy): dynamic-programming
    /// cells computed plus prefix/suffix trim comparisons. Saturating — a
    /// corpus-wide accumulation cannot overflow into nonsense.
    pub cells: u64,
    /// Peak *live* dynamic-programming bytes of this run: the rolling rows,
    /// plus — for the divide-and-conquer traceback — the seed rows held on
    /// the recursion stack. Zero when trimming resolved the whole pair.
    /// (Class tables are O(n + m) bookkeeping, not DP state, and are not
    /// counted.)
    pub matrix_bytes: u64,
    /// Bytes the historical full score matrix would have occupied for this
    /// pair: `(n + 1) · (m + 1) · 4`. The Figure 22 baseline figure.
    pub full_matrix_bytes: u64,
    /// Match pairs resolved by prefix/suffix trimming, without any DP.
    pub trimmed: usize,
    /// `true` when the run was score-only (no traceback).
    pub score_only: bool,
    /// `true` when a diagonal band was attempted for this run.
    pub banded: bool,
    /// `true` when the band saturated and the run fell back to the exact
    /// (unbanded) computation. The result is byte-identical either way.
    pub band_saturated: bool,
}

impl AlignmentStats {
    /// Fraction of the shorter sequence that was matched, in `[0, 1]`.
    pub fn match_ratio(&self) -> f64 {
        let denom = self.len_left.min(self.len_right);
        if denom == 0 {
            0.0
        } else {
            self.matches as f64 / denom as f64
        }
    }
}

/// The result of aligning two linearized functions.
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Aligned entries in sequence order.
    pub pairs: Vec<AlignedPair>,
    /// Instrumentation counters.
    pub stats: AlignmentStats,
}

// ---------------------------------------------------------------------------
// Alignment run counters, registered in the telemetry metrics registry as
// `fm_align.*` (like `ssa_ir::structural_key_counters`): reports snapshot
// them around a run and publish the deltas, and
// `telemetry::registry().reset()` zeroes them between test runs.
// ---------------------------------------------------------------------------

struct AlignMetrics {
    score_only_runs: telemetry::metrics::Counter,
    full_runs: telemetry::metrics::Counter,
    full_matrix_runs: telemetry::metrics::Counter,
    trimmed_entries: telemetry::metrics::Counter,
    /// Banded DP attempts, and how many of them saturated (fell back).
    band_runs: telemetry::metrics::Counter,
    band_saturations: telemetry::metrics::Counter,
    /// Cached per-function class-table lookups.
    class_table_hits: telemetry::metrics::Counter,
    class_table_misses: telemetry::metrics::Counter,
    /// Distribution of aligned sequence lengths (`n + m` per run).
    lengths: telemetry::metrics::Histogram,
}

fn align_metrics() -> &'static AlignMetrics {
    static METRICS: OnceLock<AlignMetrics> = OnceLock::new();
    METRICS.get_or_init(|| AlignMetrics {
        score_only_runs: telemetry::registry().counter("fm_align.score_only_runs"),
        full_runs: telemetry::registry().counter("fm_align.full_runs"),
        full_matrix_runs: telemetry::registry().counter("fm_align.full_matrix_runs"),
        trimmed_entries: telemetry::registry().counter("fm_align.trimmed_entries"),
        band_runs: telemetry::registry().counter("fm_align.band.runs"),
        band_saturations: telemetry::registry().counter("fm_align.band.saturations"),
        class_table_hits: telemetry::registry().counter("fm_align.class_table.hits"),
        class_table_misses: telemetry::registry().counter("fm_align.class_table.misses"),
        lengths: telemetry::registry().histogram("fm_align.alignment_length"),
    })
}

/// Monotonic process-wide counters of the alignment tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignmentCounters {
    /// [`align_score`] runs (score-only rolling DP).
    pub score_only_runs: u64,
    /// [`align`] runs (linear-space traceback).
    pub full_runs: u64,
    /// [`align_full_matrix`] runs — the quadratic reference. Zero in
    /// production: only differential tests and benchmarks call it.
    pub full_matrix_runs: u64,
    /// Match pairs resolved by trimming instead of DP, summed over all runs.
    pub trimmed_entries: u64,
    /// Banded DP attempts across both tiers.
    pub band_runs: u64,
    /// Banded attempts that saturated and fell back to the exact tier.
    pub band_saturations: u64,
    /// Cached class-table lookups served from a function's analysis slot.
    pub class_table_hits: u64,
    /// Class-table builds (empty slot, mutated function, or foreign slice).
    pub class_table_misses: u64,
}

/// Snapshots the process-wide alignment counters (telemetry-registry
/// backed: `fm_align.*`).
pub fn alignment_counters() -> AlignmentCounters {
    let m = align_metrics();
    AlignmentCounters {
        score_only_runs: m.score_only_runs.get(),
        full_runs: m.full_runs.get(),
        full_matrix_runs: m.full_matrix_runs.get(),
        trimmed_entries: m.trimmed_entries.get(),
        band_runs: m.band_runs.get(),
        band_saturations: m.band_saturations.get(),
        class_table_hits: m.class_table_hits.get(),
        class_table_misses: m.class_table_misses.get(),
    }
}

// ---------------------------------------------------------------------------
// Mergeability classes.
// ---------------------------------------------------------------------------

/// The feature tuple [`mergeable`] compares: two entries are mergeable iff
/// their classes are equal. Kept in exact lockstep with
/// [`crate::linearize::mergeable_insts`] — every arm of that match compares
/// precisely the fields captured here.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum MergeClass {
    Label,
    Binary(Type, BinOp),
    ICmp(Type, ICmpPred),
    Select(Type, Vec<Type>),
    Call(Type, String, usize, Vec<Type>),
    Invoke(Type, String, usize, Vec<Type>),
    Alloca(Type, Type),
    Load(Type),
    Store(Type, Vec<Type>),
    Gep(Type, u32, Vec<Type>),
    Cast(Type, CastKind, Vec<Type>),
    Br(Type),
    CondBr(Type),
    Switch(Type, Vec<i64>),
    Ret(Type, bool),
    Unreachable(Type),
    Resume(Type),
}

fn operand_types(f: &Function, id: ssa_ir::InstId) -> Vec<Type> {
    f.inst(id)
        .kind
        .operands()
        .iter()
        .map(|v| f.value_type(*v))
        .collect()
}

/// The mergeability class of one entry, or `None` for entries mergeable with
/// nothing (phi-nodes and landing pads fall through `mergeable_insts` to the
/// catch-all `false` arm — even against themselves).
fn entry_class(f: &Function, e: SeqEntry) -> Option<MergeClass> {
    let id = match e {
        SeqEntry::Label(_) => return Some(MergeClass::Label),
        SeqEntry::Inst(id) => id,
    };
    let data = f.inst(id);
    let ty = data.ty;
    use InstKind::*;
    Some(match &data.kind {
        Binary { op, .. } => MergeClass::Binary(ty, *op),
        ICmp { pred, .. } => MergeClass::ICmp(ty, *pred),
        Select { .. } => MergeClass::Select(ty, operand_types(f, id)),
        Call { callee, args } => {
            MergeClass::Call(ty, callee.clone(), args.len(), operand_types(f, id))
        }
        Invoke { callee, args, .. } => {
            MergeClass::Invoke(ty, callee.clone(), args.len(), operand_types(f, id))
        }
        Alloca { ty: slot } => MergeClass::Alloca(ty, *slot),
        Load { .. } => MergeClass::Load(ty),
        Store { .. } => MergeClass::Store(ty, operand_types(f, id)),
        Gep { stride, .. } => MergeClass::Gep(ty, *stride, operand_types(f, id)),
        Cast { kind, .. } => MergeClass::Cast(ty, *kind, operand_types(f, id)),
        Br { .. } => MergeClass::Br(ty),
        CondBr { .. } => MergeClass::CondBr(ty),
        Switch { cases, .. } => MergeClass::Switch(ty, cases.iter().map(|(v, _)| *v).collect()),
        Ret { value } => MergeClass::Ret(ty, value.is_some()),
        Unreachable => MergeClass::Unreachable(ty),
        Resume { .. } => MergeClass::Resume(ty),
        Phi { .. } | LandingPad => return None,
    })
}

// ---------------------------------------------------------------------------
// Cached per-function class tables.
// ---------------------------------------------------------------------------

/// A function's interned mergeability-class table: one local class id per
/// linearized entry, plus per-class occurrence counts and encoded byte costs.
///
/// Built once per function body and cached in the `ssa_ir::Function` opaque
/// analysis slot ([`Function::analysis_cache`]), which every mutating method
/// clears — so a cached table is always consistent with the current body.
/// Classifying a candidate pair then merges two tables (hashing only the
/// distinct classes) instead of re-interning every entry, and the planner's
/// admissible pre-filter reads the histogram without touching the body at
/// all.
pub struct ClassTable {
    /// The linearized sequence the table was computed for. [`class_table`]
    /// only serves a cached table when the caller's slice matches exactly.
    pub(crate) seq: Vec<SeqEntry>,
    /// Local class id per entry; `u32::MAX` marks never-mergeable entries
    /// (phi-nodes, landing pads) that get fresh sentinels at pair time.
    pub(crate) ids: Vec<u32>,
    /// The distinct classes, indexed by local id.
    pub(crate) classes: Vec<MergeClass>,
    /// Occurrences of each class in the sequence.
    pub(crate) counts: Vec<u32>,
    /// Encoded instruction bytes of each class as `(X86Like, ThumbLike)`.
    /// Constant within a class: every byte-relevant `InstKind` field (opcode,
    /// switch-case count, …) is part of the class tuple. Labels cost zero.
    pub(crate) bytes: Vec<(u32, u32)>,
    /// Lazily-computed foldable bytes as `(X86Like, ThumbLike)`: how much the
    /// post-merge cleanup pipeline shrinks this function when run on the
    /// function *alone*. The pre-filter's profit bound charges this much
    /// slack to the pair, because whatever cleanup strips from a function's
    /// own code in the merged body it also strips from a solo clone (merging
    /// never makes side-exclusive code *more* foldable — operand divergence
    /// only adds selects). Computed at most once per cached table; the slot
    /// invalidation that guards [`ClassTable::seq`] guards this too.
    pub(crate) foldable: OnceLock<(u64, u64)>,
}

impl ClassTable {
    /// Number of linearized entries the table covers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the function linearizes to nothing.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Per-class byte cost on `target`.
    pub(crate) fn class_bytes(&self, id: usize, target: Target) -> u64 {
        let (x86, thumb) = self.bytes[id];
        match target {
            Target::X86Like => x86 as u64,
            Target::ThumbLike => thumb as u64,
        }
    }

    /// Bytes the post-merge cleanup pipeline strips from `f` when run on a
    /// solo clone, on `target`. `f` must be the function this table was built
    /// for. Cached in the table (and thus in the function's analysis slot),
    /// so the clone-and-clean runs at most once per function body no matter
    /// how many candidate pairs the function appears in.
    pub(crate) fn foldable_bytes(&self, f: &Function, target: Target) -> u64 {
        let (x86, thumb) = *self.foldable.get_or_init(|| compute_foldable_bytes(f));
        match target {
            Target::X86Like => x86,
            Target::ThumbLike => thumb,
        }
    }
}

/// Runs the merge pipeline's cleanup (`cleanup_function`, which iterates
/// simplify-cfg, constant folding, phi dedup and DCE) to a size fixpoint on
/// a clone of `f` and reports how many encoded bytes it shaved, per target.
fn compute_foldable_bytes(f: &Function) -> (u64, u64) {
    let mut cleaned = f.clone();
    for _ in 0..4 {
        let before = ssa_passes::function_size_bytes(&cleaned, Target::X86Like);
        ssa_passes::cleanup_function(&mut cleaned);
        if ssa_passes::function_size_bytes(&cleaned, Target::X86Like) == before {
            break;
        }
    }
    let fold = |t: Target| {
        ssa_passes::function_size_bytes(f, t)
            .saturating_sub(ssa_passes::function_size_bytes(&cleaned, t)) as u64
    };
    (fold(Target::X86Like), fold(Target::ThumbLike))
}

fn build_class_table(f: &Function, seq: &[SeqEntry]) -> ClassTable {
    let mut intern: HashMap<MergeClass, u32> = HashMap::new();
    let mut ids = Vec::with_capacity(seq.len());
    let mut classes = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut bytes: Vec<(u32, u32)> = Vec::new();
    for &e in seq {
        match entry_class(f, e) {
            Some(class) => {
                let id = if let Some(&id) = intern.get(&class) {
                    id
                } else {
                    let id = classes.len() as u32;
                    let (x86, thumb) = match e {
                        SeqEntry::Label(_) => (0, 0),
                        SeqEntry::Inst(inst) => {
                            let kind = &f.inst(inst).kind;
                            (
                                Target::X86Like.inst_bytes(kind) as u32,
                                Target::ThumbLike.inst_bytes(kind) as u32,
                            )
                        }
                    };
                    classes.push(class.clone());
                    counts.push(0);
                    bytes.push((x86, thumb));
                    intern.insert(class, id);
                    id
                };
                counts[id as usize] += 1;
                ids.push(id);
            }
            None => ids.push(u32::MAX),
        }
    }
    ClassTable {
        seq: seq.to_vec(),
        ids,
        classes,
        counts,
        bytes,
        foldable: OnceLock::new(),
    }
}

/// The class table for `seq` (a linearization of `f`), served from the
/// function's analysis slot when possible. A cached table is only reused
/// when its recorded sequence matches `seq` exactly, so callers passing
/// foreign slices (tests align arbitrary sub-slices) fall back to a fresh
/// build — counted as a miss — without ever producing a wrong table.
pub fn class_table(f: &Function, seq: &[SeqEntry]) -> Arc<ClassTable> {
    let metrics = align_metrics();
    if let Some(cached) = f.analysis_cache() {
        if let Ok(table) = cached.downcast::<ClassTable>() {
            if table.seq == seq {
                metrics.class_table_hits.inc();
                return table;
            }
        }
    }
    metrics.class_table_misses.inc();
    let table = Arc::new(build_class_table(f, seq));
    let _ = f.set_analysis_cache(table.clone());
    table
}

/// Like [`class_table`] but linearizes `f` itself on a miss. On a hit the
/// cached table is trusted as-is: the analysis slot is cleared by every
/// mutation, so whatever was stored was computed from the current body.
pub fn class_table_of(f: &Function) -> Arc<ClassTable> {
    let metrics = align_metrics();
    if let Some(cached) = f.analysis_cache() {
        if let Ok(table) = cached.downcast::<ClassTable>() {
            metrics.class_table_hits.inc();
            return table;
        }
    }
    metrics.class_table_misses.inc();
    let seq = linearize(f);
    let table = Arc::new(build_class_table(f, &seq));
    let _ = f.set_analysis_cache(table.clone());
    table
}

/// Snapshots the process-wide class-table cache counters as
/// `(hits, misses)` (telemetry-registry backed: `fm_align.class_table.*`).
pub fn class_table_counters() -> (u64, u64) {
    let m = align_metrics();
    (m.class_table_hits.get(), m.class_table_misses.get())
}

// ---------------------------------------------------------------------------
// Thread-local scratch arena.
// ---------------------------------------------------------------------------

/// Reusable buffers for one alignment run. One arena lives per thread
/// ([`with_scratch`]), so the planner's rayon scoring batches stop allocating
/// per candidate pair once every worker's arena has warmed up.
#[derive(Default)]
pub struct AlignScratch {
    /// Interned class ids of the two sequences.
    c1: Vec<u32>,
    c2: Vec<u32>,
    /// Per-pair remap of the second table's local class ids onto the shared
    /// pair-local id space.
    remap2: Vec<u32>,
    /// Pool of DP row buffers for the rolling passes and the seed rows held
    /// by the divide-and-conquer traceback.
    rows: Vec<Vec<u32>>,
    /// Reverse-order pair buffer of the traceback.
    rev: Vec<AlignedPair>,
}

impl AlignScratch {
    /// A fresh, empty arena (buffers grow on first use).
    pub fn new() -> AlignScratch {
        AlignScratch::default()
    }

    /// Fills `c1`/`c2` with pair-comparable class ids by merging the two
    /// functions' cached [`ClassTable`]s: only the *distinct* classes are
    /// hashed (to remap the second table onto the first), every entry is a
    /// plain array copy. Never-mergeable entries get unique sentinel ids
    /// counted down from `u32::MAX` so they equal nothing — not even each
    /// other — exactly as the historical per-pair interner assigned them.
    fn classify(&mut self, f1: &Function, seq1: &[SeqEntry], f2: &Function, seq2: &[SeqEntry]) {
        let t1 = class_table(f1, seq1);
        let t2 = class_table(f2, seq2);
        self.merge_tables(&t1, &t2);
    }

    fn merge_tables(&mut self, t1: &ClassTable, t2: &ClassTable) {
        self.c1.clear();
        self.c2.clear();
        let mut sentinel = u32::MAX;
        // The first table's local ids are already distinct; use them verbatim.
        for &id in &t1.ids {
            self.c1.push(if id == u32::MAX {
                let s = sentinel;
                sentinel -= 1;
                s
            } else {
                id
            });
        }
        // Remap the second table's classes: equal classes collapse onto the
        // first table's id, new ones extend the id space above it. The map
        // borrows the classes, so nothing is cloned per pair.
        let map: HashMap<&MergeClass, u32> = t1.classes.iter().zip(0u32..).collect();
        self.remap2.clear();
        let mut next = t1.classes.len() as u32;
        for class in &t2.classes {
            match map.get(class) {
                Some(&id) => self.remap2.push(id),
                None => {
                    self.remap2.push(next);
                    next += 1;
                }
            }
        }
        for &id in &t2.ids {
            self.c2.push(if id == u32::MAX {
                let s = sentinel;
                sentinel -= 1;
                s
            } else {
                self.remap2[id as usize]
            });
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<AlignScratch> = RefCell::new(AlignScratch::new());
}

/// Runs `body` with this thread's [`AlignScratch`] arena.
pub fn with_scratch<R>(body: impl FnOnce(&mut AlignScratch) -> R) -> R {
    SCRATCH.with(|scratch| body(&mut scratch.borrow_mut()))
}

/// Tracks live DP bytes (rows in flight) and their high-water mark.
#[derive(Default)]
struct MemTracker {
    live: u64,
    peak: u64,
    cells: u64,
}

impl MemTracker {
    fn acquire(&mut self, len: usize) {
        self.live += 4 * len as u64;
        self.peak = self.peak.max(self.live);
    }

    fn release(&mut self, len: usize) {
        self.live -= 4 * len as u64;
    }

    fn count_cells(&mut self, n: u64) {
        self.cells = self.cells.saturating_add(n);
    }
}

fn full_matrix_bytes(n: usize, m: usize) -> u64 {
    4 * ((n as u64) + 1) * ((m as u64) + 1)
}

// ---------------------------------------------------------------------------
// Diagonal banding.
// ---------------------------------------------------------------------------

/// A diagonal-band request for the banded DP tiers.
///
/// The band restricts row `i` of the DP to columns
/// `j ∈ [i + min(0, m−n) − slack, i + max(0, m−n) + slack]` — the `|n − m|`
/// corridor every global path must cross, widened by `slack` on each side.
/// Any width is *safe*: a saturated band (one that cannot prove its corner
/// score exact) falls back to the unbanded tier, so results are byte-exact
/// regardless; the width only tunes how often the cheap pass wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// Extra half-width beyond the `|n − m|` corridor.
    pub slack: u32,
}

impl Band {
    /// A band with the given extra half-width.
    pub fn new(slack: u32) -> Band {
        Band { slack }
    }

    /// Sizes a band from a discovery-time distance hint (opcode-fingerprint
    /// Manhattan distance or MinHash estimate): each unit of distance is one
    /// potential insertion/deletion pushing the path off the diagonal, so
    /// the corridor is widened by the full hint on top of the base slack.
    pub fn from_hint(slack: u32, distance: Option<u64>) -> Band {
        let widen = distance.unwrap_or(0).min(u32::MAX as u64) as u32;
        Band {
            slack: slack.saturating_add(widen),
        }
    }
}

/// A concrete band corridor for an `n × m` core: row `i` may compute columns
/// `[i + cmin, i + cmax]` (clamped to `[1, cols]`). `floor` is the exactness
/// threshold: a banded corner score `S ≥ floor = min(n, m) − slack` proves at
/// most `slack` entries of the shorter side are unmatched, hence some optimal
/// path deviates from the corridor diagonal by at most `slack` — it lies
/// inside the band, and every in-band score on it was computed exactly.
#[derive(Debug, Clone, Copy)]
struct Corridor {
    cmin: i64,
    cmax: i64,
    floor: i64,
}

impl Corridor {
    /// The corridor for an `n`-row, `m`-column core, or `None` when the band
    /// would not exclude any cells (nothing to win; run unbanded).
    fn new(n: usize, m: usize, band: Band) -> Option<Corridor> {
        let w = band.slack as i64;
        let diff = m as i64 - n as i64;
        let cmin = diff.min(0) - w;
        let cmax = diff.max(0) + w;
        if cmax - cmin >= m as i64 {
            return None;
        }
        Some(Corridor {
            cmin,
            cmax,
            floor: n.min(m) as i64 - w,
        })
    }

    #[inline]
    fn lo(&self, r: usize) -> usize {
        (r as i64 + self.cmin).max(1) as usize
    }

    #[inline]
    fn hi(&self, r: usize, cols: usize) -> usize {
        (r as i64 + self.cmax).min(cols as i64).max(0) as usize
    }
}

/// Runs the in-place banded rolling score DP over the class slices `x`
/// (rows) and `y` (columns), returning the corner value `row[m]`.
///
/// Cells outside the corridor keep whatever the row buffer last held (the
/// zero seed, or an older row's value). Those stale values are always lower
/// bounds of the true scores — DP values are monotone down a column — and a
/// `max` against a lower bound can only understate, so every computed cell
/// is `≤` its true value, and cells whose best path stays inside the band
/// are exact. The corner check against [`Corridor::floor`] then certifies
/// exactness of the returned score.
fn banded_score_pass(
    x: &[u32],
    y: &[u32],
    cor: &Corridor,
    row: &mut Vec<u32>,
    mem: &mut MemTracker,
) -> u32 {
    let cols = y.len();
    row.clear();
    row.resize(cols + 1, 0);
    for r in 1..=x.len() {
        let lo = cor.lo(r);
        let hi = cor.hi(r, cols);
        if lo > hi {
            continue;
        }
        let xc = x[r - 1];
        // In-place row update: `old` is the cell's previous-row value (up),
        // `row[j-1]` is already this row (left), and `diag` carries the
        // previous-row value of the left neighbor. At `j = lo` the left
        // neighbor is a stale out-of-band cell — a lower bound, which is
        // exactly what the banded pass is allowed to read.
        let mut diag = row[lo - 1];
        for j in lo..=hi {
            let old = row[j];
            let mut best = old.max(row[j - 1]);
            if xc == y[j - 1] {
                best = best.max(diag + 1);
            }
            row[j] = best;
            diag = old;
        }
        mem.count_cells((hi - lo + 1) as u64);
    }
    row[cols]
}

// ---------------------------------------------------------------------------
// Tier 1: score only.
// ---------------------------------------------------------------------------

/// Computes the optimal number of mergeable matches between the two
/// linearized functions — exactly [`align`]`(..).stats.matches` — without a
/// traceback and without the full matrix: common prefixes and suffixes are
/// trimmed (both preserve the optimal score because gaps are free), and the
/// remaining core runs a two-row rolling DP over its *shorter* side, so live
/// memory is O(min(n, m)).
pub fn align_score(
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
) -> AlignmentStats {
    with_scratch(|scratch| align_score_banded_in(scratch, f1, seq1, f2, seq2, None))
}

/// [`align_score`] against a caller-managed arena.
pub fn align_score_in(
    scratch: &mut AlignScratch,
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
) -> AlignmentStats {
    align_score_banded_in(scratch, f1, seq1, f2, seq2, None)
}

/// [`align_score`] with an optional diagonal band. The returned stats —
/// including the match count — are identical at any band width; a band that
/// cannot certify its corner score falls back to the exact rolling DP and
/// reports [`AlignmentStats::band_saturated`].
pub fn align_score_banded(
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
    band: Option<Band>,
) -> AlignmentStats {
    with_scratch(|scratch| align_score_banded_in(scratch, f1, seq1, f2, seq2, band))
}

/// [`align_score_banded`] against a caller-managed arena.
pub fn align_score_banded_in(
    scratch: &mut AlignScratch,
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
    band: Option<Band>,
) -> AlignmentStats {
    let (n, m) = (seq1.len(), seq2.len());
    scratch.classify(f1, seq1, f2, seq2);
    let mut mem = MemTracker::default();

    // Trim the common prefix, then the common suffix of what remains. Both
    // are score-exact: when the outermost entries are mergeable, some optimal
    // alignment matches them (free gaps admit an exchange argument).
    let mut lo = 0usize;
    while lo < n && lo < m && scratch.c1[lo] == scratch.c2[lo] {
        lo += 1;
    }
    let mut suf = 0usize;
    while lo + suf < n && lo + suf < m && scratch.c1[n - 1 - suf] == scratch.c2[m - 1 - suf] {
        suf += 1;
    }
    mem.count_cells((lo + suf + 1).min(n.min(m) + 1) as u64);

    let AlignScratch { c1, c2, rows, .. } = scratch;
    let core1 = &c1[lo..n - suf];
    let core2 = &c2[lo..m - suf];
    // The score DP is symmetric in its inputs; roll over the shorter side.
    let (short, long) = if core1.len() <= core2.len() {
        (core1, core2)
    } else {
        (core2, core1)
    };
    let mut pool = RowPool { rows };
    let mut dp_matches = 0u32;
    let mut rows_bytes = 0u64;
    let metrics = align_metrics();
    let mut banded = false;
    let mut band_saturated = false;
    if !short.is_empty() {
        let width = short.len() + 1;
        // Banded attempt first: one row, corridor cells only. The corner
        // check proves the score exact or the attempt is discarded.
        let corridor = band.and_then(|b| Corridor::new(long.len(), short.len(), b));
        let mut band_hit = false;
        if let Some(cor) = corridor {
            banded = true;
            metrics.band_runs.inc();
            let mut row = pool.take(width, &mut mem);
            let corner = banded_score_pass(long, short, &cor, &mut row, &mut mem);
            pool.give(row, width, &mut mem);
            if corner as i64 >= cor.floor {
                dp_matches = corner;
                rows_bytes = 4 * width as u64;
                band_hit = true;
            } else {
                band_saturated = true;
                metrics.band_saturations.inc();
            }
        }
        if !band_hit {
            let mut prev = pool.take(width, &mut mem);
            prev.resize(width, 0);
            let mut cur = pool.take(width, &mut mem);
            cur.resize(width, 0);
            rows_bytes = 4 * 2 * width as u64;
            for &lc in long {
                cur[0] = 0;
                for j in 1..width {
                    let up = prev[j];
                    let left = cur[j - 1];
                    let mut best = up.max(left);
                    if lc == short[j - 1] {
                        best = best.max(prev[j - 1] + 1);
                    }
                    cur[j] = best;
                }
                std::mem::swap(&mut prev, &mut cur);
                mem.count_cells(short.len() as u64);
            }
            dp_matches = prev[width - 1];
            pool.give(prev, width, &mut mem);
            pool.give(cur, width, &mut mem);
        }
    }

    metrics.score_only_runs.inc();
    metrics.trimmed_entries.add((lo + suf) as u64);
    metrics.lengths.record((n + m) as u64);
    AlignmentStats {
        len_left: n,
        len_right: m,
        matches: lo + suf + dp_matches as usize,
        cells: mem.cells,
        matrix_bytes: rows_bytes,
        full_matrix_bytes: full_matrix_bytes(n, m),
        trimmed: lo + suf,
        score_only: true,
        banded,
        band_saturated,
    }
}

// ---------------------------------------------------------------------------
// Tier 2: linear-space exact traceback.
// ---------------------------------------------------------------------------

/// Aligns two linearized functions, maximizing the number of [`mergeable`]
/// pairs (gaps carry no penalty and non-mergeable entries are never paired,
/// matching the scoring used by FMSA). The result — including tie-breaking —
/// is byte-identical to the historical full-matrix traceback
/// ([`align_full_matrix`]), but peak memory is O(m · log n) instead of
/// O(n · m): the divide-and-conquer recursion re-derives DP rows on demand
/// and holds at most one seed row per live level.
pub fn align(f1: &Function, seq1: &[SeqEntry], f2: &Function, seq2: &[SeqEntry]) -> Alignment {
    with_scratch(|scratch| align_banded_in(scratch, f1, seq1, f2, seq2, None))
}

/// [`align`] against a caller-managed arena.
pub fn align_in(
    scratch: &mut AlignScratch,
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
) -> Alignment {
    align_banded_in(scratch, f1, seq1, f2, seq2, None)
}

/// [`align`] with an optional diagonal band.
///
/// A banded run first makes a one-row score pass over the corridor. If the
/// corner score certifies exactness (see [`Band`]), the traceback then (a)
/// restricts every recomputed DP row to the corridor, and (b) starts with
/// the walk's value already known, which arms the meet-in-the-middle column
/// clamp from the first strip. If the band saturates, the pass is discarded
/// and the exact unbanded traceback runs. Either way the returned pairs are
/// byte-identical to [`align_full_matrix`] — banding never changes results,
/// only the work spent reaching them.
pub fn align_banded(
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
    band: Option<Band>,
) -> Alignment {
    with_scratch(|scratch| align_banded_in(scratch, f1, seq1, f2, seq2, band))
}

/// [`align_banded`] against a caller-managed arena.
pub fn align_banded_in(
    scratch: &mut AlignScratch,
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
    band: Option<Band>,
) -> Alignment {
    let (n, m) = (seq1.len(), seq2.len());
    scratch.classify(f1, seq1, f2, seq2);
    let mut mem = MemTracker::default();

    // Suffix trimming only: the greedy traceback provably takes the diagonal
    // at (n, m) whenever the last entries are mergeable (S(n, m) always
    // equals S(n-1, m-1) + 1 then), so trailing matches are canonical. A
    // common *prefix* match is merely score-preserving — the canonical
    // traceback may pair the first entry with a later partner — so the full
    // tier leaves prefixes to the DP.
    let mut suf = 0usize;
    while suf < n && suf < m && scratch.c1[n - 1 - suf] == scratch.c2[m - 1 - suf] {
        suf += 1;
    }
    mem.count_cells((suf + 1).min(n.min(m) + 1) as u64);
    let core_n = n - suf;
    let core_m = m - suf;

    scratch.rev.clear();
    let mut matches = suf;
    let mut banded = false;
    let mut band_saturated = false;
    {
        // Split-borrow the arena: class tables and the pair buffer are
        // disjoint from the row pool the tracer draws on.
        let AlignScratch {
            c1, c2, rows, rev, ..
        } = scratch;
        let mut tracer = Tracer {
            x: &c1[..core_n],
            y: &c2[..core_m],
            s1: &seq1[..core_n],
            s2: &seq2[..core_m],
            out: rev,
            pool: RowPool { rows },
            mem: &mut mem,
            cor: None,
        };
        if core_n > 0 {
            // Banded pre-pass: a one-row corridor score. When its corner
            // check certifies exactness, the traceback runs with the
            // corridor window *and* the walk's value known up front (which
            // arms the column clamp from the very first strip); when it
            // saturates, the traceback runs unbanded as if no band had been
            // requested.
            let metrics = align_metrics();
            let mut top_val = None;
            if let Some(cor) = band.and_then(|b| Corridor::new(core_n, core_m, b)) {
                banded = true;
                metrics.band_runs.inc();
                let mut row = tracer.pool.take(core_m + 1, tracer.mem);
                let corner =
                    banded_score_pass(&c1[..core_n], &c2[..core_m], &cor, &mut row, tracer.mem);
                tracer.pool.give(row, core_m + 1, tracer.mem);
                if (corner as i64) >= cor.floor {
                    tracer.cor = Some(cor);
                    top_val = Some(corner);
                } else {
                    band_saturated = true;
                    metrics.band_saturations.inc();
                }
            }
            let mut seed = tracer.pool.take(core_m + 1, tracer.mem);
            seed.resize(core_m + 1, 0);
            let ca = tracer.trace(0, core_n, core_m, top_val, &seed);
            let seed_len = seed.len();
            tracer.pool.give(seed, seed_len, tracer.mem);
            // The walk reached row 0 at column `ca`; the canonical traceback
            // finishes with left moves only.
            for j in (1..=ca).rev() {
                tracer.out.push(AlignedPair::OnlyRight(tracer.s2[j - 1]));
            }
        } else {
            for j in (1..=core_m).rev() {
                tracer.out.push(AlignedPair::OnlyRight(tracer.s2[j - 1]));
            }
        }
    }

    let mut pairs = Vec::with_capacity(scratch.rev.len() + suf);
    while let Some(pair) = scratch.rev.pop() {
        if matches!(pair, AlignedPair::Match(..)) {
            matches += 1;
        }
        pairs.push(pair);
    }
    for k in 0..suf {
        pairs.push(AlignedPair::Match(seq1[core_n + k], seq2[core_m + k]));
    }

    let metrics = align_metrics();
    metrics.full_runs.inc();
    metrics.trimmed_entries.add(suf as u64);
    metrics.lengths.record((n + m) as u64);
    Alignment {
        pairs,
        stats: AlignmentStats {
            len_left: n,
            len_right: m,
            matches,
            cells: mem.cells,
            matrix_bytes: mem.peak,
            full_matrix_bytes: full_matrix_bytes(n, m),
            trimmed: suf,
            score_only: false,
            banded,
            band_saturated,
        },
    }
}

/// Row-buffer pool wrapper used inside the split borrow of the arena.
struct RowPool<'a> {
    rows: &'a mut Vec<Vec<u32>>,
}

impl RowPool<'_> {
    fn take(&mut self, len: usize, mem: &mut MemTracker) -> Vec<u32> {
        mem.acquire(len);
        let mut row = self.rows.pop().unwrap_or_default();
        row.clear();
        row.reserve(len);
        row
    }

    fn give(&mut self, row: Vec<u32>, len: usize, mem: &mut MemTracker) {
        mem.release(len);
        self.rows.push(row);
    }
}

/// The divide-and-conquer traceback. Row `i` of the (virtual) DP pairs with
/// `x[i-1]`/`s1[i-1]`, column `j` with `y[j-1]`/`s2[j-1]`; `S(i, j)` denotes
/// the global score matrix the full-matrix implementation would fill.
struct Tracer<'a> {
    x: &'a [u32],
    y: &'a [u32],
    s1: &'a [SeqEntry],
    s2: &'a [SeqEntry],
    /// Pairs in reverse (end-to-start) order, exactly as the historical
    /// traceback pushed them.
    out: &'a mut Vec<AlignedPair>,
    pool: RowPool<'a>,
    mem: &'a mut MemTracker,
    /// Certified band corridor, in core coordinates. Only set after the
    /// banded pre-pass proved its corner score exact; every row advance then
    /// restricts itself to the corridor window.
    cor: Option<Corridor>,
}

impl Tracer<'_> {
    /// The column window row `r` computes: the intersection of `[1, cols]`,
    /// the certified band corridor (if any), and the meet-in-the-middle
    /// clamp `[clo, ∞)` derived from the walk's known value.
    #[inline]
    fn window(&self, r: usize, cols: usize, clo: usize) -> (usize, usize) {
        let mut lo = clo.max(1);
        let mut hi = cols;
        if let Some(cor) = &self.cor {
            lo = lo.max(cor.lo(r));
            hi = hi.min(cor.hi(r, cols));
        }
        (lo, hi)
    }

    /// Computes global DP row `to` over columns `0..=cols` into `out`, given
    /// the true global row `from` in `seed` (column 0 is gap-only, so the
    /// restriction to a column prefix is self-contained).
    ///
    /// The update is in place over one row buffer: cells left of the window
    /// keep the seed row's values and cells right of it are never read by
    /// the walk. Stale cells are always *lower bounds* of the true scores
    /// (DP values are monotone down a column), and the windows are chosen so
    /// that every cell whose value can influence a walk decision — a cell on
    /// some optimal path — is computed exactly:
    ///
    /// * Band corridor: the pre-pass certified that an optimal path stays
    ///   inside the corridor, and a walk cell's best-prefix-plus-canonical-
    ///   suffix path is optimal, hence in-corridor end to end.
    /// * Column clamp `clo`: when the walk's value `v` at `(b, cb)` is
    ///   known, any cell read in rows `(a, b]` has value `≥ v − (b − a) − 1`
    ///   along the walk, so its best prefix crosses row `a` at a column
    ///   where `seed ≥ v − (b − a)`; columns strictly left of the first such
    ///   column can never matter. Understatement is harmless on the read
    ///   side: a match decision only reads the diagonal when the classes
    ///   match, in which case the diagonal cell is on an optimal path (so
    ///   exact), and an up/left comparison against an understated cell can
    ///   never spuriously equal the walk's exact value because true DP
    ///   values are monotone.
    fn advance_rows(
        &mut self,
        from: usize,
        to: usize,
        cols: usize,
        seed: &[u32],
        out: &mut Vec<u32>,
        clo: usize,
    ) {
        out.clear();
        out.extend_from_slice(&seed[..=cols]);
        for r in from + 1..=to {
            let (lo, hi) = self.window(r, cols, clo);
            if lo > hi {
                continue;
            }
            let xc = self.x[r - 1];
            let mut diag = out[lo - 1];
            for j in lo..=hi {
                let old = out[j];
                let mut best = old.max(out[j - 1]);
                if xc == self.y[j - 1] {
                    best = best.max(diag + 1);
                }
                out[j] = best;
                diag = old;
            }
            self.mem.count_cells((hi - lo + 1) as u64);
        }
    }

    /// Walks the canonical traceback backwards from cell `(b, cb)` until it
    /// first reaches row `a`, emitting the moves taken (in reverse order)
    /// and returning the arrival column. `seed` holds the global DP row `a`
    /// over at least `0..=cb` (exact wherever the walk can look, see
    /// [`Tracer::advance_rows`]). Row halving recurses into the bottom strip
    /// (whose seed row is computed on demand and held only while that
    /// recursion is live) and continues iteratively into the top strip,
    /// reusing `seed`.
    ///
    /// `val` is the walk's DP value at `(b, cb)` when known — `None` only on
    /// the unbanded descent spine before the first base strip fixes it.
    /// Every strip that knows its value computes the meet-in-the-middle
    /// split column `clo` — the leftmost seed column that can still reach
    /// `val` — and clamps all row advances below it, which restores the
    /// strict O(n · m) total-work bound of classic Hirschberg.
    fn trace(&mut self, a: usize, b: usize, cb: usize, val: Option<u32>, seed: &[u32]) -> usize {
        let mut b = b;
        let mut cb = cb;
        let mut val = val;
        loop {
            if b == a {
                return cb;
            }
            // The clamp scan is exact even over a partially-stale seed row:
            // understated cells can only fail the `≥` test, and the first
            // truly-qualifying column is on an optimal path, hence computed
            // exactly.
            let clo = match val {
                Some(v) => {
                    let starget = v as i64 - (b - a) as i64;
                    if starget <= 0 {
                        0
                    } else {
                        seed[..=cb]
                            .iter()
                            .position(|&s| s as i64 >= starget)
                            .unwrap_or(0)
                    }
                }
                None => 0,
            };
            if b == a + 1 {
                // Base strip: rows a and b are both known exactly wherever
                // the walk looks; replay the historical greedy cell-for-cell.
                let mut row = self.pool.take(cb + 1, self.mem);
                self.advance_rows(a, b, cb, seed, &mut row, clo);
                let mut j = cb;
                loop {
                    let cur = row[j];
                    if j > 0 && self.x[b - 1] == self.y[j - 1] && cur == seed[j - 1] + 1 {
                        self.out
                            .push(AlignedPair::Match(self.s1[b - 1], self.s2[j - 1]));
                        self.pool.give(row, cb + 1, self.mem);
                        return j - 1;
                    } else if cur == seed[j] {
                        self.out.push(AlignedPair::OnlyLeft(self.s1[b - 1]));
                        self.pool.give(row, cb + 1, self.mem);
                        return j;
                    } else {
                        self.out.push(AlignedPair::OnlyRight(self.s2[j - 1]));
                        j -= 1;
                    }
                }
            }
            let mid = a + (b - a) / 2;
            let mut midrow = self.pool.take(cb + 1, self.mem);
            self.advance_rows(a, mid, cb, seed, &mut midrow, clo);
            let cmid = self.trace(mid, b, cb, val, &midrow);
            // The crossing cell (mid, cmid) is on the canonical path, so its
            // midrow value is exact: it seeds the top strip's clamp.
            let vmid = midrow[cmid];
            self.pool.give(midrow, cb + 1, self.mem);
            // Continue into the top strip with the same seed (row a).
            b = mid;
            cb = cmid;
            val = Some(vmid);
        }
    }
}

// ---------------------------------------------------------------------------
// Tier 3: the quadratic reference.
// ---------------------------------------------------------------------------

/// The historical full-matrix Needleman–Wunsch implementation: allocates the
/// complete `(n + 1) × (m + 1)` score matrix and traces back greedily from
/// the bottom-right corner. Kept as the reference oracle the linear-space
/// [`align`] is differentially tested against, and as the baseline of the
/// `alignment` benchmarks. Production paths never call this — the
/// [`alignment_counters`] `full_matrix_runs` counter proves it.
pub fn align_full_matrix(
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
) -> Alignment {
    let n = seq1.len();
    let m = seq2.len();
    // Score matrix, (n+1) x (m+1). u32 scores; usize would double memory for
    // no benefit, and function sizes beyond 4G entries are not realistic.
    let width = m + 1;
    let mut score = vec![0u32; (n + 1) * width];
    let mut cells = 0u64;
    for i in 1..=n {
        for j in 1..=m {
            cells += 1;
            let up = score[(i - 1) * width + j];
            let left = score[i * width + (j - 1)];
            let mut best = up.max(left);
            if mergeable(f1, seq1[i - 1], f2, seq2[j - 1]) {
                let diag = score[(i - 1) * width + (j - 1)] + 1;
                best = best.max(diag);
            }
            score[i * width + j] = best;
        }
    }

    // Traceback from the bottom-right corner.
    let mut pairs_rev = Vec::with_capacity(n + m);
    let mut matches = 0usize;
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let cur = score[i * width + j];
        if i > 0
            && j > 0
            && mergeable(f1, seq1[i - 1], f2, seq2[j - 1])
            && cur == score[(i - 1) * width + (j - 1)] + 1
        {
            pairs_rev.push(AlignedPair::Match(seq1[i - 1], seq2[j - 1]));
            matches += 1;
            i -= 1;
            j -= 1;
        } else if i > 0 && cur == score[(i - 1) * width + j] {
            pairs_rev.push(AlignedPair::OnlyLeft(seq1[i - 1]));
            i -= 1;
        } else {
            pairs_rev.push(AlignedPair::OnlyRight(seq2[j - 1]));
            j -= 1;
        }
    }
    pairs_rev.reverse();

    align_metrics().full_matrix_runs.inc();
    let matrix = (score.len() * std::mem::size_of::<u32>()) as u64;
    Alignment {
        pairs: pairs_rev,
        stats: AlignmentStats {
            len_left: n,
            len_right: m,
            matches,
            cells,
            matrix_bytes: matrix,
            full_matrix_bytes: matrix,
            trimmed: 0,
            score_only: false,
            banded: false,
            band_saturated: false,
        },
    }
}

/// Exhaustive (exponential) alignment used only by tests to check optimality
/// of [`align`] on tiny sequences.
pub fn brute_force_best_score(
    f1: &Function,
    seq1: &[SeqEntry],
    f2: &Function,
    seq2: &[SeqEntry],
) -> usize {
    fn go(f1: &Function, s1: &[SeqEntry], f2: &Function, s2: &[SeqEntry]) -> usize {
        if s1.is_empty() || s2.is_empty() {
            return 0;
        }
        let mut best = go(f1, &s1[1..], f2, s2).max(go(f1, s1, f2, &s2[1..]));
        if mergeable(f1, s1[0], f2, s2[0]) {
            best = best.max(1 + go(f1, &s1[1..], f2, &s2[1..]));
        }
        best
    }
    go(f1, seq1, f2, seq2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearize::linearize;
    use ssa_ir::parse_function;

    const F1: &str = r#"
define i32 @f1(i32 %n) {
L1:
  %x1 = call i32 @start(i32 %n)
  %x2 = icmp slt i32 %x1, 0
  br i1 %x2, label %L2, label %L3
L2:
  %x3 = call i32 @body(i32 %x1)
  br label %L4
L3:
  %x4 = call i32 @other(i32 %x1)
  br label %L4
L4:
  %x5 = phi i32 [ %x3, %L2 ], [ %x4, %L3 ]
  %x6 = call i32 @end(i32 %x5)
  ret i32 %x6
}
"#;

    const F2: &str = r#"
define i32 @f2(i32 %n) {
L1:
  %v1 = call i32 @start(i32 %n)
  br label %L2
L2:
  %v2 = phi i32 [ %v1, %L1 ], [ %v4, %L3 ]
  %v3 = icmp ne i32 %v2, 0
  br i1 %v3, label %L3, label %L4
L3:
  %v4 = call i32 @body(i32 %v2)
  br label %L2
L4:
  %v5 = call i32 @end(i32 %v2)
  ret i32 %v5
}
"#;

    #[test]
    fn identical_functions_align_perfectly() {
        let f = parse_function(F1).unwrap();
        let seq = linearize(&f);
        let a = align(&f, &seq, &f, &seq);
        assert_eq!(a.stats.matches, seq.len());
        assert!(a.pairs.iter().all(|p| matches!(p, AlignedPair::Match(..))));
        assert_eq!(a.stats.match_ratio(), 1.0);
        // An identical pair is resolved entirely by suffix trimming: no DP
        // rows ever go live.
        assert_eq!(a.stats.trimmed, seq.len());
        assert_eq!(a.stats.matrix_bytes, 0);
    }

    #[test]
    fn paper_example_aligns_the_shared_skeleton() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let a = align(&f1, &s1, &f2, &s2);
        // start/end calls, icmp-free matches, labels and branches: substantial
        // overlap but not total.
        assert!(a.stats.matches >= 8, "only {} matches", a.stats.matches);
        assert!(a.stats.matches < s1.len().min(s2.len()));
        // The output must contain every entry of both sequences exactly once.
        let left: usize = a
            .pairs
            .iter()
            .filter(|p| matches!(p, AlignedPair::Match(..) | AlignedPair::OnlyLeft(_)))
            .count();
        let right: usize = a
            .pairs
            .iter()
            .filter(|p| matches!(p, AlignedPair::Match(..) | AlignedPair::OnlyRight(_)))
            .count();
        assert_eq!(left, s1.len());
        assert_eq!(right, s2.len());
    }

    #[test]
    fn linear_space_traceback_equals_the_full_matrix_reference() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let fast = align(&f1, &s1, &f2, &s2);
        let reference = align_full_matrix(&f1, &s1, &f2, &s2);
        assert_eq!(fast.pairs, reference.pairs);
        assert_eq!(fast.stats.matches, reference.stats.matches);
        // And in both orientations plus the self-pair.
        let fast = align(&f2, &s2, &f1, &s1);
        let reference = align_full_matrix(&f2, &s2, &f1, &s1);
        assert_eq!(fast.pairs, reference.pairs);
        let fast = align(&f1, &s1, &f1, &s1);
        let reference = align_full_matrix(&f1, &s1, &f1, &s1);
        assert_eq!(fast.pairs, reference.pairs);
    }

    #[test]
    fn score_only_tier_agrees_with_the_traceback() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let score = align_score(&f1, &s1, &f2, &s2);
        let full = align(&f1, &s1, &f2, &s2);
        assert_eq!(score.matches, full.stats.matches);
        assert!(score.score_only);
        assert!(!full.stats.score_only);
    }

    #[test]
    fn alignment_preserves_relative_order() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let a = align(&f1, &s1, &f2, &s2);
        // Matched left entries must appear in the same order as in s1.
        let mut last = None;
        for p in &a.pairs {
            if let AlignedPair::Match(l, _) | AlignedPair::OnlyLeft(l) = p {
                let idx = s1.iter().position(|e| e == l).unwrap();
                if let Some(prev) = last {
                    assert!(idx > prev);
                }
                last = Some(idx);
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_small_functions() {
        let a = parse_function(
            "define i32 @a(i32 %x) {\nentry:\n  %p = add i32 %x, 1\n  %q = mul i32 %p, 2\n  ret i32 %q\n}",
        )
        .unwrap();
        let b = parse_function(
            "define i32 @b(i32 %x) {\nentry:\n  %p = mul i32 %x, 2\n  %q = add i32 %p, 3\n  %r = mul i32 %q, 5\n  ret i32 %r\n}",
        )
        .unwrap();
        let sa = linearize(&a);
        let sb = linearize(&b);
        let dp = align(&a, &sa, &b, &sb);
        let brute = brute_force_best_score(&a, &sa, &b, &sb);
        assert_eq!(dp.stats.matches, brute);
        assert_eq!(align_score(&a, &sa, &b, &sb).matches, brute);
    }

    #[test]
    fn stats_report_linear_live_memory_against_the_quadratic_baseline() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let a = align(&f1, &s1, &f2, &s2);
        let quadratic = ((s1.len() + 1) * (s2.len() + 1) * 4) as u64;
        assert_eq!(a.stats.full_matrix_bytes, quadratic);
        assert!(a.stats.matrix_bytes > 0, "this pair needs a DP core");
        assert!(
            a.stats.matrix_bytes < quadratic,
            "live peak {} must undercut the full matrix {}",
            a.stats.matrix_bytes,
            quadratic
        );
        assert!(a.stats.cells > 0);
        // The reference still reports the quadratic figures.
        let reference = align_full_matrix(&f1, &s1, &f2, &s2);
        assert_eq!(reference.stats.matrix_bytes, quadratic);
        assert_eq!(reference.stats.cells, (s1.len() * s2.len()) as u64);
    }

    #[test]
    fn score_only_peak_is_bounded_by_the_shorter_sequence() {
        // Satellite: score-only live bytes are O(min(n, m)) — growing the
        // longer side must not grow the DP rows.
        let grow = |blocks: usize| {
            let mut body = String::from("define i32 @g(i32 %x) {\nentry:\n  br label %b0\n");
            for i in 0..blocks {
                body.push_str(&format!(
                    "b{i}:\n  %v{i} = add i32 %x, {i}\n  br label %b{}\n",
                    i + 1
                ));
            }
            body.push_str(&format!("b{blocks}:\n  ret i32 %x\n}}"));
            parse_function(&body).unwrap()
        };
        let short_fn = parse_function(
            "define i32 @s(i32 %x) {\nentry:\n  %a = mul i32 %x, 2\n  %b = icmp eq i32 %a, 0\n  ret i32 %a\n}",
        )
        .unwrap();
        let short_seq = linearize(&short_fn);
        let medium = grow(40);
        let long = grow(160);
        let medium_seq = linearize(&medium);
        let long_seq = linearize(&long);
        let stats_medium = align_score(&medium, &medium_seq, &short_fn, &short_seq);
        let stats_long = align_score(&long, &long_seq, &short_fn, &short_seq);
        // Identical peaks: both runs roll over the short side only.
        assert_eq!(stats_medium.matrix_bytes, stats_long.matrix_bytes);
        let bound = (2 * (short_seq.len() + 1) * 4) as u64;
        assert!(stats_long.matrix_bytes <= bound);
        assert!(stats_long.full_matrix_bytes > 10 * stats_long.matrix_bytes.max(1));
    }

    #[test]
    fn mergeability_classes_agree_with_the_structural_predicate() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        with_scratch(|scratch| {
            scratch.classify(&f1, &s1, &f2, &s2);
            for (i, &e1) in s1.iter().enumerate() {
                for (j, &e2) in s2.iter().enumerate() {
                    assert_eq!(
                        scratch.c1[i] == scratch.c2[j],
                        mergeable(&f1, e1, &f2, e2),
                        "class table diverges at ({i}, {j})"
                    );
                }
            }
        });
    }

    #[test]
    fn tier_counters_are_monotonic_and_attributed() {
        let f = parse_function(F1).unwrap();
        let seq = linearize(&f);
        let before = alignment_counters();
        align_score(&f, &seq, &f, &seq);
        align(&f, &seq, &f, &seq);
        align_full_matrix(&f, &seq, &f, &seq);
        let after = alignment_counters();
        assert!(after.score_only_runs > before.score_only_runs);
        assert!(after.full_runs > before.full_runs);
        assert!(after.full_matrix_runs > before.full_matrix_runs);
        assert!(after.trimmed_entries >= before.trimmed_entries + 2 * seq.len() as u64);
    }

    #[test]
    fn banded_alignment_is_byte_identical_at_every_width() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let reference = align_full_matrix(&f1, &s1, &f2, &s2);
        for slack in 0..=8u32 {
            let banded = align_banded(&f1, &s1, &f2, &s2, Some(Band::new(slack)));
            assert_eq!(banded.pairs, reference.pairs, "slack {slack}");
            assert_eq!(banded.stats.matches, reference.stats.matches);
            let score = align_score_banded(&f1, &s1, &f2, &s2, Some(Band::new(slack)));
            assert_eq!(score.matches, reference.stats.matches, "slack {slack}");
            // And the mirrored orientation.
            let reference_rev = align_full_matrix(&f2, &s2, &f1, &s1);
            let banded_rev = align_banded(&f2, &s2, &f1, &s1, Some(Band::new(slack)));
            assert_eq!(banded_rev.pairs, reference_rev.pairs, "slack {slack}");
        }
    }

    /// Two same-length functions whose shared run sits 30 diagonals off the
    /// corridor (the |n − m| shift is zero, so a narrow band excludes the
    /// run entirely): the band must saturate — the corner score cannot be
    /// certified — and fall back, still byte-identical to the reference.
    #[test]
    fn band_saturation_falls_back_on_diagonal_shifted_sequences() {
        let mut b1 = String::from("define i32 @l(i32 %x) {\nentry:\n");
        for i in 0..30 {
            b1.push_str(&format!("  %m{i} = mul i32 %x, {i}\n"));
        }
        for i in 0..10 {
            b1.push_str(&format!("  %a{i} = add i32 %x, {i}\n"));
        }
        b1.push_str("  %c = icmp eq i32 %x, 0\n  ret i32 %x\n}");
        let f1 = parse_function(&b1).unwrap();
        let mut b2 = String::from("define i32 @s(i32 %x) {\nentry:\n");
        for i in 0..10 {
            b2.push_str(&format!("  %a{i} = add i32 %x, {i}\n"));
        }
        for i in 0..30 {
            b2.push_str(&format!("  %d{i} = sdiv i32 %x, {}\n", i + 1));
        }
        b2.push_str("  %c = icmp ne i32 %x, 0\n  ret i32 %x\n}");
        let f2 = parse_function(&b2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        assert_eq!(s1.len(), s2.len());
        let before = alignment_counters();
        let banded = align_banded(&f1, &s1, &f2, &s2, Some(Band::new(1)));
        let after = alignment_counters();
        assert!(banded.stats.banded);
        assert!(banded.stats.band_saturated, "band must saturate");
        assert_eq!(after.band_runs, before.band_runs + 1);
        assert_eq!(after.band_saturations, before.band_saturations + 1);
        let reference = align_full_matrix(&f1, &s1, &f2, &s2);
        assert_eq!(banded.pairs, reference.pairs);
        assert_eq!(banded.stats.matches, reference.stats.matches);
        // Same fallback guarantee on the score-only tier.
        let score = align_score_banded(&f1, &s1, &f2, &s2, Some(Band::new(1)));
        assert!(score.band_saturated);
        assert_eq!(score.matches, reference.stats.matches);
    }

    /// A *similar* pair (two extra instructions in the middle) certifies a
    /// narrow band: the corner score reaches the floor, no fallback runs,
    /// and the banded run computes strictly fewer cells than the exact one.
    #[test]
    fn certified_bands_skip_work_without_changing_results() {
        let adds = 60usize;
        let mut b1 = String::from("define i32 @a(i32 %x) {\nentry:\n");
        for i in 0..adds {
            b1.push_str(&format!("  %a{i} = add i32 %x, {i}\n"));
        }
        b1.push_str("  %c = icmp eq i32 %x, 0\n  ret i32 %x\n}");
        let f1 = parse_function(&b1).unwrap();
        let mut b2 = String::from("define i32 @b(i32 %x) {\nentry:\n");
        for i in 0..adds {
            if i == adds / 2 {
                b2.push_str("  %e0 = mul i32 %x, 7\n  %e1 = mul i32 %x, 9\n");
            }
            b2.push_str(&format!("  %a{i} = add i32 %x, {i}\n"));
        }
        b2.push_str("  %c = icmp ne i32 %x, 0\n  ret i32 %x\n}");
        let f2 = parse_function(&b2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let exact = align(&f1, &s1, &f2, &s2);
        let banded = align_banded(&f1, &s1, &f2, &s2, Some(Band::new(4)));
        assert!(banded.stats.banded);
        assert!(!banded.stats.band_saturated, "slack 4 must certify");
        assert_eq!(banded.pairs, exact.pairs);
        assert!(
            banded.stats.cells < exact.stats.cells,
            "certified band must save work: {} vs {}",
            banded.stats.cells,
            exact.stats.cells
        );
        let score_banded = align_score_banded(&f1, &s1, &f2, &s2, Some(Band::new(4)));
        let score_exact = align_score(&f1, &s1, &f2, &s2);
        assert_eq!(score_banded.matches, score_exact.matches);
        assert!(score_banded.cells < score_exact.cells);
    }

    /// The meet-in-the-middle column clamp keeps total traceback work at
    /// O(n · m) even on the adversarial family where the canonical path hugs
    /// the right edge (which used to cost an extra log n factor).
    #[test]
    fn traceback_cells_stay_quadratic_on_right_edge_hugging_paths() {
        let adds = 12usize;
        let muls = 400usize;
        // f1: the shared adds at the *top*, then a long unmatched mul tail.
        let mut b1 = String::from("define i32 @a(i32 %x) {\nentry:\n");
        for i in 0..adds {
            b1.push_str(&format!("  %a{i} = add i32 %x, {i}\n"));
        }
        for i in 0..muls {
            b1.push_str(&format!("  %m{i} = mul i32 %x, {i}\n"));
        }
        b1.push_str("  ret i32 %x\n}");
        let f1 = parse_function(&b1).unwrap();
        // f2: just the adds, ending differently so suffix trimming cannot
        // shortcut the DP.
        let mut b2 = String::from("define i32 @b(i32 %x) {\nentry:\n");
        for i in 0..adds {
            b2.push_str(&format!("  %a{i} = add i32 %x, {i}\n"));
        }
        b2.push_str("  %c = icmp eq i32 %x, 0\n  ret i32 %x\n}");
        let f2 = parse_function(&b2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let a = align(&f1, &s1, &f2, &s2);
        let reference = align_full_matrix(&f1, &s1, &f2, &s2);
        assert_eq!(a.pairs, reference.pairs);
        // An unclamped divide-and-conquer descent costs ~(1 + log₂(n)/2)·n·m
        // on this shape (≈ 5.3·n·m at n = 414): every block's walk target sits
        // on the right edge, so block widths never shrink. The split-value
        // clamp keeps the measured cost at ~3.45·n·m here, and on *similar*
        // pairs (the tier the planner feeds) at ~2·n·m.
        let quadratic = (s1.len() as u64) * (s2.len() as u64);
        assert!(
            a.stats.cells <= 4 * quadratic,
            "traceback cells {} exceed 4·n·m = {} — the column clamp regressed",
            a.stats.cells,
            4 * quadratic
        );
    }

    #[test]
    fn class_tables_are_cached_and_invalidated_with_the_body() {
        let f1 = parse_function(F1).unwrap();
        let f2 = parse_function(F2).unwrap();
        let s1 = linearize(&f1);
        let s2 = linearize(&f2);
        let (h0, m0) = class_table_counters();
        align(&f1, &s1, &f2, &s2);
        let (h1, m1) = class_table_counters();
        assert_eq!(m1, m0 + 2, "first run builds both tables");
        align(&f1, &s1, &f2, &s2);
        align_score(&f1, &s1, &f2, &s2);
        let (h2, m2) = class_table_counters();
        assert_eq!(m2, m1, "repeat runs build nothing");
        assert_eq!(h2, h1 + 4, "repeat runs hit the cache");
        assert!(h1 >= h0);
        // Mutating the function clears its slot; the next run rebuilds.
        let mut f1 = f1;
        f1.set_name("renamed");
        let s1 = linearize(&f1);
        align(&f1, &s1, &f2, &s2);
        let (_, m3) = class_table_counters();
        assert_eq!(m3, m2 + 1, "mutation invalidates exactly one table");
    }

    #[test]
    fn empty_sequences_align_trivially() {
        let f = parse_function("define void @e() {\nentry:\n  ret void\n}").unwrap();
        let a = align(&f, &[], &f, &[]);
        assert!(a.pairs.is_empty());
        assert_eq!(a.stats.matches, 0);
        assert_eq!(a.stats.match_ratio(), 0.0);
        assert_eq!(a.stats.matrix_bytes, 0);
        let seq = linearize(&f);
        let one_sided = align(&f, &seq, &f, &[]);
        assert_eq!(one_sided.pairs.len(), seq.len());
        assert!(one_sided
            .pairs
            .iter()
            .all(|p| matches!(p, AlignedPair::OnlyLeft(_))));
        assert_eq!(one_sided.pairs, align_full_matrix(&f, &seq, &f, &[]).pairs);
        let other_side = align(&f, &[], &f, &seq);
        assert_eq!(other_side.pairs, align_full_matrix(&f, &[], &f, &seq).pairs);
    }
}
