//! Function linearization: turning a CFG into the sequence of labels and
//! instructions that the sequence-alignment stage works on.
//!
//! Following the paper, phi-nodes are *not* part of the sequence — SalSSA
//! treats them as attached to their block's label (Section 4.1.1) — and
//! landing pads are excluded as well (they are regenerated next to their
//! invoke during operand assignment, Section 4.2.2).

use ssa_ir::{BlockId, Function, InstId, InstKind};

/// One element of a linearized function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeqEntry {
    /// A basic-block label.
    Label(BlockId),
    /// An instruction (never a phi-node or a landing pad).
    Inst(InstId),
}

impl SeqEntry {
    /// Returns the instruction id if this entry is an instruction.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            SeqEntry::Inst(i) => Some(i),
            SeqEntry::Label(_) => None,
        }
    }

    /// Returns the block id if this entry is a label.
    pub fn as_label(self) -> Option<BlockId> {
        match self {
            SeqEntry::Label(b) => Some(b),
            SeqEntry::Inst(_) => None,
        }
    }
}

/// Linearizes a function into labels and instructions, in layout order.
pub fn linearize(function: &Function) -> Vec<SeqEntry> {
    let mut seq = Vec::with_capacity(function.num_insts() + function.num_blocks());
    for block in function.block_ids() {
        seq.push(SeqEntry::Label(block));
        let data = function.block(block);
        for &inst in &data.insts {
            if matches!(function.inst(inst).kind, InstKind::LandingPad) {
                continue;
            }
            seq.push(SeqEntry::Inst(inst));
        }
        if let Some(term) = data.term {
            seq.push(SeqEntry::Inst(term));
        }
    }
    seq
}

/// Returns `true` when two sequence entries from two functions are allowed to
/// be merged into a single entity in the merged function.
///
/// Labels always match labels. Instructions match when they have the same
/// opcode, the same result type, the same operand types in the same order, and
/// — for calls and invokes — the same callee.
pub fn mergeable(f1: &Function, e1: SeqEntry, f2: &Function, e2: SeqEntry) -> bool {
    match (e1, e2) {
        (SeqEntry::Label(_), SeqEntry::Label(_)) => true,
        (SeqEntry::Inst(a), SeqEntry::Inst(b)) => mergeable_insts(f1, a, f2, b),
        _ => false,
    }
}

/// Instruction-level mergeability test (see [`mergeable`]).
pub fn mergeable_insts(f1: &Function, a: InstId, f2: &Function, b: InstId) -> bool {
    let da = f1.inst(a);
    let db = f2.inst(b);
    if da.ty != db.ty {
        return false;
    }
    use InstKind::*;
    match (&da.kind, &db.kind) {
        (Binary { op: o1, .. }, Binary { op: o2, .. }) => o1 == o2,
        (ICmp { pred: p1, .. }, ICmp { pred: p2, .. }) => p1 == p2,
        (Select { .. }, Select { .. }) => operand_types_match(f1, a, f2, b),
        (
            Call {
                callee: c1,
                args: a1,
            },
            Call {
                callee: c2,
                args: a2,
            },
        ) => c1 == c2 && a1.len() == a2.len() && operand_types_match(f1, a, f2, b),
        (
            Invoke {
                callee: c1,
                args: a1,
                ..
            },
            Invoke {
                callee: c2,
                args: a2,
                ..
            },
        ) => c1 == c2 && a1.len() == a2.len() && operand_types_match(f1, a, f2, b),
        (Alloca { ty: t1 }, Alloca { ty: t2 }) => t1 == t2,
        (Load { .. }, Load { .. }) => true,
        (Store { .. }, Store { .. }) => operand_types_match(f1, a, f2, b),
        (Gep { stride: s1, .. }, Gep { stride: s2, .. }) => {
            s1 == s2 && operand_types_match(f1, a, f2, b)
        }
        (Cast { kind: k1, .. }, Cast { kind: k2, .. }) => {
            k1 == k2 && operand_types_match(f1, a, f2, b)
        }
        (Br { .. }, Br { .. }) => true,
        (CondBr { .. }, CondBr { .. }) => true,
        (Switch { cases: c1, .. }, Switch { cases: c2, .. }) => {
            c1.len() == c2.len() && c1.iter().zip(c2.iter()).all(|((v1, _), (v2, _))| v1 == v2)
        }
        (Ret { value: v1 }, Ret { value: v2 }) => v1.is_some() == v2.is_some(),
        (Unreachable, Unreachable) => true,
        (Resume { .. }, Resume { .. }) => true,
        _ => false,
    }
}

fn operand_types_match(f1: &Function, a: InstId, f2: &Function, b: InstId) -> bool {
    let ta: Vec<_> = f1
        .inst(a)
        .kind
        .operands()
        .iter()
        .map(|v| f1.value_type(*v))
        .collect();
    let tb: Vec<_> = f2
        .inst(b)
        .kind
        .operands()
        .iter()
        .map(|v| f2.value_type(*v))
        .collect();
    ta == tb
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_ir::parse_function;

    const F1: &str = r#"
define i32 @f1(i32 %n) {
L1:
  %x1 = call i32 @start(i32 %n)
  %x2 = icmp slt i32 %x1, 0
  br i1 %x2, label %L2, label %L3
L2:
  %x3 = call i32 @body(i32 %x1)
  br label %L4
L3:
  %x4 = call i32 @other(i32 %x1)
  br label %L4
L4:
  %x5 = phi i32 [ %x3, %L2 ], [ %x4, %L3 ]
  %x6 = call i32 @end(i32 %x5)
  ret i32 %x6
}
"#;

    #[test]
    fn linearization_skips_phis_and_keeps_order() {
        let f = parse_function(F1).unwrap();
        let seq = linearize(&f);
        // 4 labels + 10 instructions - 1 phi = 13 entries.
        assert_eq!(seq.len(), 13);
        assert!(matches!(seq[0], SeqEntry::Label(_)));
        let phi_present = seq.iter().any(|e| {
            e.as_inst()
                .map(|i| f.inst(i).kind.is_phi())
                .unwrap_or(false)
        });
        assert!(!phi_present);
    }

    #[test]
    fn labels_match_labels_not_instructions() {
        let f = parse_function(F1).unwrap();
        let seq = linearize(&f);
        assert!(mergeable(&f, seq[0], &f, seq[4]) || !mergeable(&f, seq[0], &f, seq[1]));
        assert!(!mergeable(&f, seq[0], &f, seq[1]));
    }

    #[test]
    fn identical_calls_are_mergeable_but_different_callees_are_not() {
        let f = parse_function(F1).unwrap();
        let body = f.inst_by_name("x3").unwrap();
        let other = f.inst_by_name("x4").unwrap();
        let start = f.inst_by_name("x1").unwrap();
        assert!(mergeable_insts(&f, body, &f, body));
        assert!(!mergeable_insts(&f, body, &f, other));
        assert!(!mergeable_insts(&f, body, &f, start)); // different arity? same; different callee
    }

    #[test]
    fn type_mismatch_blocks_merging() {
        let a = parse_function(
            "define i32 @a(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        )
        .unwrap();
        let b = parse_function(
            "define i64 @b(i64 %x) {\nentry:\n  %r = add i64 %x, 1\n  ret i64 %r\n}",
        )
        .unwrap();
        let ra = a.inst_by_name("r").unwrap();
        let rb = b.inst_by_name("r").unwrap();
        assert!(!mergeable_insts(&a, ra, &b, rb));
    }

    #[test]
    fn branches_and_rets_match_by_shape() {
        let a = parse_function(F1).unwrap();
        let seq = linearize(&a);
        let terms: Vec<_> = seq
            .iter()
            .filter_map(|e| e.as_inst())
            .filter(|i| a.inst(*i).kind.is_terminator())
            .collect();
        // br (cond) vs br (uncond) do not both exist as CondBr; check pairs of plain brs.
        let brs: Vec<_> = terms
            .iter()
            .copied()
            .filter(|i| matches!(a.inst(*i).kind, InstKind::Br { .. }))
            .collect();
        assert!(brs.len() >= 2);
        assert!(mergeable_insts(&a, brs[0], &a, brs[1]));
        let condbr = terms
            .iter()
            .copied()
            .find(|i| matches!(a.inst(*i).kind, InstKind::CondBr { .. }))
            .unwrap();
        assert!(!mergeable_insts(&a, brs[0], &a, condbr));
    }
}
