//! Opcode-frequency fingerprints and the candidate-ranking mechanism.
//!
//! Both FMSA and SalSSA use the same fingerprint-based ranking to decide which
//! pairs of functions to *attempt* to merge (Section 5.1 of the paper): for
//! every function a cheap fingerprint is computed, and for each function only
//! the `t` most similar candidates (the exploration threshold) are actually
//! aligned and evaluated with the cost model.

use crate::linearize::linearize;
use ssa_ir::{Function, InstKind, Module};

/// A cheap summary of one function used for similarity ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Name of the fingerprinted function.
    pub name: String,
    /// Number of opcodes per opcode class.
    pub opcode_counts: Vec<u32>,
    /// Number of linearized entries (labels + instructions).
    pub seq_len: usize,
    /// Number of IR instructions.
    pub num_insts: usize,
}

impl Fingerprint {
    /// Computes the fingerprint of a function.
    pub fn of(function: &Function) -> Fingerprint {
        let mut counts = vec![0u32; InstKind::NUM_OPCODE_CLASSES];
        for block in function.block_ids() {
            for inst in function.block(block).all_insts() {
                counts[function.inst(inst).kind.opcode_class()] += 1;
            }
        }
        Fingerprint {
            name: function.name.clone(),
            opcode_counts: counts,
            seq_len: linearize(function).len(),
            num_insts: function.num_insts(),
        }
    }

    /// Manhattan distance between two fingerprints; smaller means more
    /// similar and therefore more likely to merge profitably.
    pub fn distance(&self, other: &Fingerprint) -> u64 {
        self.opcode_counts
            .iter()
            .zip(&other.opcode_counts)
            .map(|(a, b)| u64::from(a.abs_diff(*b)))
            .sum()
    }

    /// An upper bound on the number of instruction matches two functions can
    /// share, used to discard hopeless candidates early.
    pub fn max_possible_matches(&self, other: &Fingerprint) -> u64 {
        self.opcode_counts
            .iter()
            .zip(&other.opcode_counts)
            .map(|(a, b)| u64::from(*a.min(b)))
            .sum()
    }
}

/// A MinHash signature over the function's opcode-shingle set, used by the
/// cross-module index for locality-sensitive bucketing: two functions with
/// similar instruction sequences agree on most signature components, so
/// banding the signature puts likely merge candidates into shared shards
/// without comparing every pair of functions in a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    /// One minimum per hash function.
    pub sig: Vec<u64>,
}

/// Window length of the opcode shingles hashed into [`MinHash`] signatures.
pub const SHINGLE_LEN: usize = 3;

impl MinHash {
    /// Number of hash functions (signature components) used by default. 16
    /// components in 8 bands of 2 rows keeps band collisions likely down to
    /// roughly 50% sequence similarity.
    pub const DEFAULT_HASHES: usize = 16;

    /// Computes the signature of a function with `num_hashes` components.
    pub fn of(function: &Function, num_hashes: usize) -> MinHash {
        let classes: Vec<u64> = function
            .block_ids()
            .flat_map(|b| function.block(b).all_insts().collect::<Vec<_>>())
            .map(|inst| function.inst(inst).kind.opcode_class() as u64)
            .collect();
        let mut shingles: Vec<u64> = Vec::new();
        if classes.len() < SHINGLE_LEN {
            // Degenerate tiny function: hash the whole sequence as one shingle.
            shingles.push(hash_shingle(&classes));
        } else {
            for window in classes.windows(SHINGLE_LEN) {
                shingles.push(hash_shingle(window));
            }
        }
        let sig = (0..num_hashes as u64)
            .map(|i| {
                let salt = splitmix64(i);
                shingles
                    .iter()
                    .map(|s| splitmix64(s ^ salt))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect();
        MinHash { sig }
    }

    /// Estimated Jaccard similarity of the two shingle sets: the fraction of
    /// signature components on which the functions agree.
    pub fn similarity(&self, other: &MinHash) -> f64 {
        if self.sig.is_empty() || self.sig.len() != other.sig.len() {
            return 0.0;
        }
        let agree = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.sig.len() as f64
    }

    /// One stable hash per band of `rows` consecutive signature components.
    /// Two functions share a shard exactly when some band hash is equal.
    pub fn band_hashes(&self, rows: usize) -> Vec<u64> {
        self.sig
            .chunks(rows.max(1))
            .map(|band| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for v in band {
                    h = splitmix64(h ^ v);
                }
                h
            })
            .collect()
    }
}

fn hash_shingle(window: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for v in window {
        h = splitmix64(h ^ v.wrapping_mul(0x100_0000_01b3));
    }
    h
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fingerprints for all functions of a module, with ranking queries.
#[derive(Debug, Clone)]
pub struct Ranking {
    fingerprints: Vec<Fingerprint>,
}

impl Ranking {
    /// Fingerprints every function in the module.
    pub fn build(module: &Module) -> Ranking {
        Ranking {
            fingerprints: module.functions().iter().map(Fingerprint::of).collect(),
        }
    }

    /// All fingerprints, in module order.
    pub fn fingerprints(&self) -> &[Fingerprint] {
        &self.fingerprints
    }

    /// Function names ordered from largest to smallest, the order in which the
    /// paper's drivers consider merge candidates (Section 5.5).
    pub fn names_by_size_desc(&self) -> Vec<String> {
        let mut v: Vec<&Fingerprint> = self.fingerprints.iter().collect();
        v.sort_by(|a, b| b.num_insts.cmp(&a.num_insts).then(a.name.cmp(&b.name)));
        v.into_iter().map(|f| f.name.clone()).collect()
    }

    /// The `t` candidate functions most similar to `name` (excluding itself
    /// and any name in `exclude`), most similar first.
    pub fn candidates(&self, name: &str, t: usize, exclude: &[String]) -> Vec<String> {
        let Some(target) = self.fingerprints.iter().find(|f| f.name == name) else {
            return Vec::new();
        };
        let mut scored: Vec<(u64, &Fingerprint)> = self
            .fingerprints
            .iter()
            .filter(|f| f.name != name && !exclude.contains(&f.name))
            .map(|f| (target.distance(f), f))
            .collect();
        scored.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.name.cmp(&b.1.name)));
        scored
            .into_iter()
            .take(t)
            .map(|(_, f)| f.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_ir::parse_module;

    fn module() -> Module {
        parse_module(
            r#"
define i32 @small(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @clone_a(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = call i32 @helper(i32 %b)
  ret i32 %c
}

define i32 @clone_b(i32 %x) {
entry:
  %a = add i32 %x, 5
  %b = mul i32 %a, 3
  %c = call i32 @helper(i32 %b)
  ret i32 %c
}

define double @unrelated(double %x) {
entry:
  %a = fmul double %x, 2.5
  %b = fadd double %a, 1.0
  %c = fdiv double %b, 3.0
  ret double %c
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn identical_shapes_have_zero_distance() {
        let m = module();
        let a = Fingerprint::of(m.function("clone_a").unwrap());
        let b = Fingerprint::of(m.function("clone_b").unwrap());
        assert_eq!(a.distance(&b), 0);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn unrelated_functions_are_far() {
        let m = module();
        let a = Fingerprint::of(m.function("clone_a").unwrap());
        let u = Fingerprint::of(m.function("unrelated").unwrap());
        assert!(a.distance(&u) > 0);
        assert!(a.distance(&u) > a.distance(&Fingerprint::of(m.function("small").unwrap())));
    }

    #[test]
    fn ranking_prefers_the_clone() {
        let m = module();
        let ranking = Ranking::build(&m);
        let cands = ranking.candidates("clone_a", 2, &[]);
        assert_eq!(cands[0], "clone_b");
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn ranking_respects_threshold_and_exclusions() {
        let m = module();
        let ranking = Ranking::build(&m);
        assert_eq!(ranking.candidates("clone_a", 1, &[]).len(), 1);
        let cands = ranking.candidates("clone_a", 3, &["clone_b".to_string()]);
        assert!(!cands.contains(&"clone_b".to_string()));
        assert!(ranking.candidates("missing", 3, &[]).is_empty());
    }

    #[test]
    fn names_by_size_orders_largest_first() {
        let m = module();
        let ranking = Ranking::build(&m);
        let order = ranking.names_by_size_desc();
        assert_eq!(order.first().map(String::as_str), Some("clone_a"));
        assert_eq!(order.last().map(String::as_str), Some("small"));
    }

    #[test]
    fn minhash_ranks_clones_above_unrelated_functions() {
        let m = module();
        let a = MinHash::of(m.function("clone_a").unwrap(), MinHash::DEFAULT_HASHES);
        let b = MinHash::of(m.function("clone_b").unwrap(), MinHash::DEFAULT_HASHES);
        let u = MinHash::of(m.function("unrelated").unwrap(), MinHash::DEFAULT_HASHES);
        assert_eq!(a.sig.len(), MinHash::DEFAULT_HASHES);
        assert_eq!(a.similarity(&a), 1.0);
        assert!(a.similarity(&b) > a.similarity(&u));
        // Same opcode sequence -> identical shingle set -> identical signature.
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    fn minhash_banding_is_deterministic_and_sized() {
        let m = module();
        let a = MinHash::of(m.function("clone_a").unwrap(), 16);
        assert_eq!(a.band_hashes(2).len(), 8);
        assert_eq!(a.band_hashes(2), a.band_hashes(2));
        let tiny = MinHash::of(m.function("small").unwrap(), 16);
        assert_eq!(tiny.sig.len(), 16);
    }

    #[test]
    fn max_possible_matches_is_symmetric_min_overlap() {
        let m = module();
        let a = Fingerprint::of(m.function("clone_a").unwrap());
        let s = Fingerprint::of(m.function("small").unwrap());
        assert_eq!(a.max_possible_matches(&s), s.max_possible_matches(&a));
        assert!(a.max_possible_matches(&s) <= s.num_insts as u64);
    }
}
