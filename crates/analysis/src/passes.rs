//! The lint and invariant passes, grouped by scope.
//!
//! * **Function scope** — checks that read one [`Function`] in isolation:
//!   the re-homed [`ssa_ir::verifier`] (`E001`–`E007`), unreachable blocks
//!   (`W101`), dead parameters (`L201`) and the merged-function
//!   discriminator invariant (`E021`). Their verdicts depend only on the
//!   function's structural key (plus whether it lives in the reserved
//!   `merged.` namespace), which is what lets the engine cache them.
//! * **Module scope** — checks that additionally read the module's symbol
//!   table: dangling `merged.*` callees (`E010`), call-site signature
//!   agreement (`E011`) and the forwarding-thunk shape invariant (`E020`).
//!   Cacheable by [`Module::content_hash`].
//! * **Program scope** — checks over a whole corpus under the linker
//!   resolution rules of the `callgraph` crate (own module first, then the
//!   first externally visible definition in corpus order, internal symbols
//!   never resolved across modules): declaration/definition signature
//!   agreement (`E030`), ODR consistency (`E031`/`L202`) and internal-symbol
//!   leaks (`E032`).
//!
//! Function-scope diagnostics are produced *provenance-free* (empty module
//! and function fields) so cached verdicts can be shared between
//! structurally identical functions; the engine re-homes them on retrieval.
//! For the same reason their messages never mention the function's own
//! name — only content the structural key already normalizes over (block
//! labels, parameter indices, callee symbols).

use crate::diag::{codes, Diagnostic};
use callgraph::{CallGraph, CorpusCallIndex};
use ssa_ir::{verifier, Constant, Function, InstKind, Linkage, Module, Type, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The reserved symbol namespace of compiler-generated merged functions.
/// Both the intra-module driver (`merged.{f}.{g}`) and the cross-module
/// pipeline (`merged.xm.{...}`) name their outputs under this prefix.
pub const MERGED_PREFIX: &str = "merged.";

/// Returns `true` when `name` lies in the reserved merged-function
/// namespace. This is the only name-derived fact the function-scope passes
/// consult, and it is part of the engine's cache key.
pub fn is_merged_name(name: &str) -> bool {
    name.starts_with(MERGED_PREFIX)
}

/// If `f` has the forwarding-thunk shape — a single block whose only body
/// instruction is a call and whose terminator returns that call's result
/// (or nothing, for void) — returns the callee symbol.
///
/// The dead-parameter and discriminator passes exempt this shape: a thunk
/// legitimately drops parameters its merged target no longer needs, and a
/// re-merged function reduced to a thunk forwards its old discriminator as
/// an ordinary argument.
pub fn forwarding_callee(f: &Function) -> Option<&str> {
    if f.num_blocks() != 1 {
        return None;
    }
    let entry = f.try_entry()?;
    let block = f.block(entry);
    if !block.phis.is_empty() || block.insts.len() != 1 {
        return None;
    }
    let call = block.insts[0];
    let InstKind::Call { callee, .. } = &f.inst(call).kind else {
        return None;
    };
    match &f.inst(block.term?).kind {
        InstKind::Ret { value: Some(v) } if *v == Value::Inst(call) => Some(callee),
        InstKind::Ret { value: None } if f.ret_ty == Type::Void => Some(callee),
        _ => None,
    }
}

/// Runs every function-scope pass on `f`, returning provenance-free
/// diagnostics (the engine re-homes them when attributing cached verdicts).
pub fn check_function(f: &Function) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for e in verifier::verify_function(f) {
        out.push(Diagnostic::new(e.code, "", "", e.message));
    }
    unreachable_blocks(f, &mut out);
    dead_params(f, &mut out);
    discriminator(f, &mut out);
    out
}

/// `W101`: blocks not reachable from the entry block.
fn unreachable_blocks(f: &Function, out: &mut Vec<Diagnostic>) {
    if f.try_entry().is_none() {
        return; // no entry: the verifier already reported E001
    }
    let reachable = f.reachable_blocks();
    for b in f.block_ids() {
        if !reachable.contains(&b) {
            out.push(Diagnostic::new(
                codes::UNREACHABLE_BLOCK,
                "",
                "",
                format!(
                    "block %{} is unreachable from the entry block",
                    f.block(b).name
                ),
            ));
        }
    }
}

/// `L201`: parameters no instruction ever reads. Forwarding thunks are
/// exempt (dropping dead parameters of the target is their whole point), and
/// so are merged functions entirely: their parameter list is the union of
/// both inputs' lists, so a dead parameter there mirrors dead code the
/// *inputs* carried — re-reporting it under the merged name would make every
/// paranoid run on lint-dirty input noisy without naming a new defect. (The
/// discriminator parameter is `E021`'s business either way.)
fn dead_params(f: &Function, out: &mut Vec<Diagnostic>) {
    if f.params.is_empty() || forwarding_callee(f).is_some() || is_merged_name(&f.name) {
        return;
    }
    let mut used = vec![false; f.params.len()];
    for id in f.inst_ids() {
        f.inst(id).kind.for_each_operand(|v| {
            if let Value::Arg(i) = v {
                if let Some(slot) = used.get_mut(i as usize) {
                    *slot = true;
                }
            }
        });
    }
    let skip_fid = usize::from(is_merged_name(&f.name));
    for (i, used) in used.iter().enumerate().skip(skip_fid) {
        if !used {
            out.push(Diagnostic::new(
                codes::DEAD_PARAM,
                "",
                "",
                format!("parameter %{} (index {i}) is never used", f.param_names[i]),
            ));
        }
    }
}

/// `E021`: the discriminator invariant of merged functions. Parameter 0 must
/// exist, be `i1`, and every use must be a `br`/`select` condition — the
/// shape that guarantees each discriminator branch constant-folds at a
/// thunk's constant call site. Forwarding thunks are exempt: a function that
/// was itself merged away keeps its `merged.*` name but forwards its old
/// discriminator as a plain argument.
fn discriminator(f: &Function, out: &mut Vec<Diagnostic>) {
    if !is_merged_name(&f.name) || forwarding_callee(f).is_some() {
        return;
    }
    let fid = Value::Arg(0);
    match f.params.first() {
        None => {
            out.push(Diagnostic::new(
                codes::DISCRIMINATOR,
                "",
                "",
                "merged function has no discriminator parameter".to_string(),
            ));
            return;
        }
        Some(ty) if *ty != Type::I1 => {
            out.push(Diagnostic::new(
                codes::DISCRIMINATOR,
                "",
                "",
                format!("discriminator parameter has type {ty}, expected i1"),
            ));
            return;
        }
        Some(_) => {}
    }
    for id in f.inst_ids() {
        let kind = &f.inst(id).kind;
        let escapes = match kind {
            InstKind::CondBr { cond, .. } => *cond != fid && kind.operands().contains(&fid),
            InstKind::Select {
                if_true, if_false, ..
            } => *if_true == fid || *if_false == fid,
            other => other.operands().contains(&fid),
        };
        if escapes {
            out.push(Diagnostic::new(
                codes::DISCRIMINATOR,
                "",
                "",
                format!(
                    "discriminator escapes into a non-dispatch operand of '{}'",
                    kind.opcode()
                ),
            ));
        }
    }
}

/// Runs every module-scope pass on `m`, returning diagnostics whose module
/// field is *empty* (the engine re-homes cached verdicts by module name —
/// [`Module::content_hash`] does not cover the name, so two identically
/// populated modules share a cache entry).
pub fn check_module(m: &Module) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in m.functions() {
        call_sites(m, f, &mut out);
        thunk_shape(m, f, &mut out);
    }
    out
}

/// `E010`/`E011`: per call site, a `merged.*` callee must be defined or
/// declared in its own module (merged functions are compiler-generated, so a
/// dangling reference is always a pipeline bug), and any callee the module
/// knows a signature for must be called compatibly (argument count,
/// non-undef argument types, result type).
fn call_sites(m: &Module, f: &Function, out: &mut Vec<Diagnostic>) {
    for (inst, callee) in f.call_sites() {
        let Some((params, ret_ty)) = m.signature(callee) else {
            if is_merged_name(callee) {
                out.push(Diagnostic::new(
                    codes::DANGLING_MERGED_CALLEE,
                    "",
                    &f.name,
                    format!("call to @{callee}, which this module neither defines nor declares"),
                ));
            }
            continue; // unresolved ordinary externals are the linker's business
        };
        let args = match &f.inst(inst).kind {
            InstKind::Call { args, .. } | InstKind::Invoke { args, .. } => args,
            _ => unreachable!("call_sites yields only calls and invokes"),
        };
        if args.len() != params.len() {
            out.push(Diagnostic::new(
                codes::CALL_SIGNATURE,
                "",
                &f.name,
                format!(
                    "call to @{callee} passes {} arguments, but its signature takes {}",
                    args.len(),
                    params.len()
                ),
            ));
            continue;
        }
        for (i, (arg, want)) in args.iter().zip(&params).enumerate() {
            if !arg.is_undef() && f.value_type(*arg) != *want {
                out.push(Diagnostic::new(
                    codes::CALL_SIGNATURE,
                    "",
                    &f.name,
                    format!(
                        "argument {i} of call to @{callee} has type {}, expected {want}",
                        f.value_type(*arg)
                    ),
                ));
            }
        }
        let produced = f.inst(inst).ty;
        if produced != ret_ty {
            out.push(Diagnostic::new(
                codes::CALL_SIGNATURE,
                "",
                &f.name,
                format!(
                    "call to @{callee} produces {produced}, but its signature returns {ret_ty}"
                ),
            ));
        }
    }
}

/// `E020`: forwarding thunks into the `merged.` namespace must match the
/// merged callee's arity and return type and pass a *constant*, non-undef
/// `i1` discriminator — the constant the merged function's dispatch
/// constant-folds on.
fn thunk_shape(m: &Module, f: &Function, out: &mut Vec<Diagnostic>) {
    let Some(callee) = forwarding_callee(f) else {
        return;
    };
    if !is_merged_name(callee) {
        return;
    }
    let callee = callee.to_string();
    let Some((params, ret_ty)) = m.signature(&callee) else {
        return; // E010 already covers the dangling reference
    };
    let entry = f.block(f.entry());
    let InstKind::Call { args, .. } = &f.inst(entry.insts[0]).kind else {
        unreachable!("forwarding_callee guarantees a call");
    };
    let mut report = |message: String| {
        out.push(Diagnostic::new(codes::THUNK_SHAPE, "", &f.name, message));
    };
    if args.len() != params.len() {
        report(format!(
            "thunk passes {} arguments to @{callee}, which takes {}",
            args.len(),
            params.len()
        ));
        return;
    }
    match args.first() {
        Some(Value::Const(c)) if !c.is_undef() && c.ty() == Type::I1 => {}
        Some(other) => report(format!(
            "thunk discriminator must be a constant i1, found {}",
            match other {
                Value::Const(c) if c.is_undef() => "undef".to_string(),
                Value::Const(Constant::Int { bits, .. }) => format!("a constant i{bits}"),
                Value::Const(_) => "a non-integer constant".to_string(),
                Value::Arg(i) => format!("parameter %{i}"),
                Value::Inst(_) => "an instruction result".to_string(),
            }
        )),
        None => {} // zero-arg merged callee: already arity-mismatched above
    }
    for (i, (arg, want)) in args.iter().zip(&params).enumerate().skip(1) {
        if !arg.is_undef() && f.value_type(*arg) != *want {
            report(format!(
                "thunk argument {i} has type {}, expected {want}",
                f.value_type(*arg)
            ));
        }
    }
    if f.ret_ty != ret_ty {
        report(format!(
            "thunk returns {}, but @{callee} returns {ret_ty}",
            f.ret_ty
        ));
    }
}

/// Runs every program-scope pass over the corpus, applying the same symbol
/// resolution the `callgraph` crate uses: a reference binds to its own
/// module first, then to the first externally visible definition in corpus
/// order; internal definitions never capture cross-module references.
pub fn check_program(modules: &[Module]) -> Vec<Diagnostic> {
    let index = CorpusCallIndex::build(modules);
    let graph = CallGraph::resolve(&index);
    let mut out = Vec::new();

    // First externally visible definition per symbol, in corpus order —
    // derived from the resolved graph so this stays the *one* resolution
    // rule in the codebase.
    let mut first_external: HashMap<&str, usize> = HashMap::new();
    for node in &graph.nodes {
        if node.linkage == Linkage::External {
            first_external
                .entry(node.name.as_str())
                .or_insert(node.module);
        }
    }

    // E030: every declaration against the definition it would resolve to.
    for (mi, m) in modules.iter().enumerate() {
        for d in m.declarations() {
            let def = match m.function(&d.name) {
                Some(f) => Some((mi, f)),
                None => first_external
                    .get(d.name.as_str())
                    .map(|&dm| (dm, modules[dm].function(&d.name).expect("indexed def"))),
            };
            let Some((dm, f)) = def else {
                continue; // unresolved external declaration: a library symbol
            };
            if f.params != d.params || f.ret_ty != d.ret_ty {
                out.push(Diagnostic::new(
                    codes::DECL_SIGNATURE,
                    &m.name,
                    "",
                    format!(
                        "declaration of @{} disagrees with the definition it resolves to \
                         in {}: declared ({:?}) -> {}, defined ({:?}) -> {}",
                        d.name, modules[dm].name, d.params, d.ret_ty, f.params, f.ret_ty
                    ),
                ));
            }
        }
    }

    // E031 / L202: externally visible definitions of the same symbol must be
    // ODR-interchangeable; identical copies are a (benign) dedup opportunity.
    let mut external_defs: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for node in &graph.nodes {
        if node.linkage == Linkage::External {
            external_defs
                .entry(node.name.as_str())
                .or_default()
                .push(node.module);
        }
    }
    for (name, mods) in external_defs {
        if mods.len() < 2 {
            continue;
        }
        let keeper = modules[mods[0]].function(name).expect("indexed def");
        let clashes: Vec<&str> = mods[1..]
            .iter()
            .filter(|&&mi| {
                let f = modules[mi].function(name).expect("indexed def");
                f.params != keeper.params
                    || f.ret_ty != keeper.ret_ty
                    || f.structural_key() != keeper.structural_key()
            })
            .map(|&mi| modules[mi].name.as_str())
            .collect();
        if clashes.is_empty() {
            let others: Vec<&str> = mods[1..]
                .iter()
                .map(|&mi| modules[mi].name.as_str())
                .collect();
            out.push(Diagnostic::new(
                codes::DUPLICATE_DEFINITION,
                &modules[mods[0]].name,
                name,
                format!(
                    "externally visible definition duplicated verbatim in {} (a dedup \
                     opportunity for `salssa xmerge`)",
                    others.join(", ")
                ),
            ));
        } else {
            out.push(Diagnostic::new(
                codes::ODR_CLASH,
                &modules[mods[0]].name,
                name,
                format!(
                    "externally visible definitions in {} disagree with the copy \
                     in {} (ODR violation)",
                    clashes.join(", "),
                    modules[mods[0]].name,
                ),
            ));
        }
    }

    // E032: cross-module references that resolve to nothing externally
    // visible but *would* hit an internal definition elsewhere — a symbol
    // that leaked out of its translation unit.
    let mut internal_defs: HashMap<&str, Vec<usize>> = HashMap::new();
    for node in &graph.nodes {
        if node.linkage == Linkage::Internal {
            internal_defs
                .entry(node.name.as_str())
                .or_default()
                .push(node.module);
        }
    }
    for (mi, summary) in index.modules.iter().enumerate() {
        let mut reported: HashSet<&str> = HashSet::new();
        for f in &summary.functions {
            for (callee, _) in &f.callees {
                if graph.node_id(mi, callee).is_some()
                    || first_external.contains_key(callee.as_str())
                    || !reported.insert(callee.as_str())
                {
                    continue; // resolvable, or already reported for this module
                }
                if let Some(holders) = internal_defs.get(callee.as_str()) {
                    let holders: Vec<&str> = holders
                        .iter()
                        .filter(|&&hm| hm != mi)
                        .map(|&hm| modules[hm].name.as_str())
                        .collect();
                    if !holders.is_empty() {
                        out.push(Diagnostic::new(
                            codes::INTERNAL_LEAK,
                            &modules[mi].name,
                            &f.name,
                            format!(
                                "reference to @{callee} resolves only to internal \
                                 definitions (in {}), which never participate in \
                                 cross-module resolution",
                                holders.join(", ")
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_ir::parse_module;

    fn module(name: &str, text: &str) -> Module {
        let mut m = parse_module(text).expect("test IR parses");
        m.name = name.to_string();
        m
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_function_has_no_findings() {
        let m = module(
            "m",
            "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        );
        assert!(check_function(&m.functions()[0]).is_empty());
        assert!(check_module(&m).is_empty());
    }

    #[test]
    fn unreachable_block_is_w101() {
        let m = module(
            "m",
            "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\ndead:\n  ret i32 0\n}",
        );
        let diags = check_function(&m.functions()[0]);
        assert_eq!(codes_of(&diags), vec![codes::UNREACHABLE_BLOCK]);
        assert!(diags[0].message.contains("%dead"));
    }

    #[test]
    fn dead_param_is_l201_with_exemptions() {
        let m = module(
            "m",
            "define i32 @f(i32 %x, i32 %unused) {\nentry:\n  ret i32 %x\n}",
        );
        let diags = check_function(&m.functions()[0]);
        assert_eq!(codes_of(&diags), vec![codes::DEAD_PARAM]);
        assert!(diags[0].message.contains("index 1"));

        // A forwarding thunk drops parameters by design: exempt.
        let thunk = module(
            "m",
            "define i32 @f(i32 %x, i32 %unused) {\nentry:\n  %r = call i32 @target(i32 %x)\n  ret i32 %r\n}",
        );
        assert!(check_function(&thunk.functions()[0]).is_empty());

        // Merged functions are exempt wholesale: their parameter list unions
        // both inputs', so dead entries mirror the inputs' dead code rather
        // than naming a new defect.
        let merged = module(
            "m",
            "define i32 @merged.a.b(i1 %fid, i32 %x, i32 %unused) {\nentry:\n  br i1 %fid, label %l, label %r\nl:\n  ret i32 %x\nr:\n  ret i32 0\n}",
        );
        assert!(check_function(&merged.functions()[0]).is_empty());
    }

    #[test]
    fn discriminator_must_dispatch_only() {
        // Clean: every use is a br/select condition.
        let good = module(
            "m",
            "define i32 @merged.a.b(i1 %fid, i32 %x) {\nentry:\n  %s = select i1 %fid, i32 %x, i32 0\n  br i1 %fid, label %l, label %r\nl:\n  ret i32 %s\nr:\n  ret i32 0\n}",
        );
        assert!(check_function(&good.functions()[0]).is_empty());

        // Escaping into arithmetic is E021.
        let escape = module(
            "m",
            "define i32 @merged.a.b(i1 %fid, i32 %x) {\nentry:\n  %z = zext i1 %fid to i32\n  %r = add i32 %z, %x\n  ret i32 %r\n}",
        );
        let diags = check_function(&escape.functions()[0]);
        assert_eq!(codes_of(&diags), vec![codes::DISCRIMINATOR]);

        // Wrong discriminator type is E021.
        let wrong_ty = module(
            "m",
            "define i32 @merged.a.b(i32 %fid, i32 %x) {\nentry:\n  ret i32 %x\n}",
        );
        let diags = check_function(&wrong_ty.functions()[0]);
        assert!(codes_of(&diags).contains(&codes::DISCRIMINATOR));

        // A merged function later reduced to a forwarding thunk passes its
        // old discriminator as a plain argument: exempt.
        let rethunked = module(
            "m",
            "define i32 @merged.a.b(i1 %fid, i32 %x) {\nentry:\n  %r = call i32 @merged.c.d(i1 false, i1 %fid, i32 %x)\n  ret i32 %r\n}",
        );
        assert!(check_function(&rethunked.functions()[0]).is_empty());
    }

    #[test]
    fn dangling_merged_callee_is_e010() {
        let m = module(
            "m",
            "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @merged.gone(i1 true, i32 %x)\n  ret i32 %r\n}",
        );
        let diags = check_module(&m);
        assert_eq!(codes_of(&diags), vec![codes::DANGLING_MERGED_CALLEE]);
        assert_eq!(diags[0].function, "f");
        // A declaration satisfies the reference (post-xmerge donor modules).
        let declared = module(
            "m",
            "declare i32 @merged.gone(i1, i32)\ndefine i32 @f(i32 %x) {\nentry:\n  %r = call i32 @merged.gone(i1 true, i32 %x)\n  ret i32 %r\n}",
        );
        assert!(check_module(&declared).is_empty());
        // Ordinary unresolved externals are fine: the linker's business.
        let plain = module(
            "m",
            "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @lib_helper(i32 %x)\n  ret i32 %r\n}",
        );
        assert!(check_module(&plain).is_empty());
    }

    #[test]
    fn call_signature_mismatches_are_e011() {
        let arity = module(
            "m",
            "declare i32 @g(i32, i32)\ndefine i32 @f(i32 %x) {\nentry:\n  %r = call i32 @g(i32 %x)\n  ret i32 %r\n}",
        );
        let diags = check_module(&arity);
        assert_eq!(codes_of(&diags), vec![codes::CALL_SIGNATURE]);
        assert!(diags[0].message.contains("1 arguments"));

        let arg_ty = module(
            "m",
            "declare i32 @g(i64)\ndefine i32 @f(i32 %x) {\nentry:\n  %r = call i32 @g(i32 %x)\n  ret i32 %r\n}",
        );
        assert_eq!(
            codes_of(&check_module(&arg_ty)),
            vec![codes::CALL_SIGNATURE]
        );

        let ret_ty = module(
            "m",
            "declare i64 @g(i32)\ndefine i32 @f(i32 %x) {\nentry:\n  %r = call i32 @g(i32 %x)\n  ret i32 %r\n}",
        );
        assert_eq!(
            codes_of(&check_module(&ret_ty)),
            vec![codes::CALL_SIGNATURE]
        );

        // Undef arguments are exempt (thunks pad unused parameters with undef).
        let undef = module(
            "m",
            "declare i32 @g(i64)\ndefine i32 @f(i32 %x) {\nentry:\n  %r = call i32 @g(i64 undef)\n  ret i32 %r\n}",
        );
        assert!(check_module(&undef).is_empty());
    }

    #[test]
    fn thunk_shape_violations_are_e020() {
        // Clean thunk: constant i1 discriminator, matching types.
        let good = module(
            "m",
            "declare i32 @merged.a.b(i1, i32)\ndefine i32 @a(i32 %x) {\nentry:\n  %r = call i32 @merged.a.b(i1 false, i32 %x)\n  ret i32 %r\n}",
        );
        assert!(check_module(&good).is_empty());

        // Non-constant discriminator.
        let nonconst = module(
            "m",
            "declare i32 @merged.a.b(i1, i32)\ndefine i32 @a(i1 %c, i32 %x) {\nentry:\n  %r = call i32 @merged.a.b(i1 %c, i32 %x)\n  ret i32 %r\n}",
        );
        let diags = check_module(&nonconst);
        assert_eq!(codes_of(&diags), vec![codes::THUNK_SHAPE]);
        assert!(diags[0].message.contains("constant i1"));

        // Undef discriminator is as bad: the dispatch cannot constant-fold.
        let undef = module(
            "m",
            "declare i32 @merged.a.b(i1, i32)\ndefine i32 @a(i32 %x) {\nentry:\n  %r = call i32 @merged.a.b(i1 undef, i32 %x)\n  ret i32 %r\n}",
        );
        assert_eq!(codes_of(&check_module(&undef)), vec![codes::THUNK_SHAPE]);

        // Return-type disagreement.
        let ret = module(
            "m",
            "declare i64 @merged.a.b(i1, i32)\ndefine i64 @a(i32 %x) {\nentry:\n  %r = call i64 @merged.a.b(i1 true, i32 %x)\n  ret i64 %r\n}",
        );
        assert!(check_module(&ret).is_empty());
    }

    #[test]
    fn decl_def_disagreement_is_e030() {
        let def = module("m1", "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}");
        let bad_decl = module(
            "m2",
            "declare i64 @f(i32)\ndefine i32 @g(i32 %x) {\nentry:\n  %r = call i64 @f(i32 %x)\n  ret i32 0\n}",
        );
        let diags = check_program(&[def, bad_decl]);
        let e030: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::DECL_SIGNATURE)
            .collect();
        assert_eq!(e030.len(), 1);
        assert_eq!(e030[0].module, "m2");
        assert!(e030[0].message.contains("@f"));
    }

    #[test]
    fn odr_duplicates_split_into_e031_and_l202() {
        let body = "define i32 @dup(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}";
        let other = "define i32 @dup(i32 %x) {\nentry:\n  %r = mul i32 %x, 2\n  ret i32 %r\n}";
        // Identical copies: L202, a dedup opportunity.
        let diags = check_program(&[module("m1", body), module("m2", body)]);
        assert_eq!(codes_of(&diags), vec![codes::DUPLICATE_DEFINITION]);
        assert_eq!(diags[0].function, "dup");
        // Diverging copies: E031, an ODR violation.
        let diags = check_program(&[module("m1", body), module("m2", other)]);
        assert_eq!(codes_of(&diags), vec![codes::ODR_CLASH]);
        assert!(diags[0].message.contains("m2"));
        // Internal copies never clash: linkage scopes them to their module.
        let internal =
            "define internal i32 @dup(i32 %x) {\nentry:\n  %r = mul i32 %x, 2\n  ret i32 %r\n}";
        assert!(check_program(&[module("m1", body), module("m2", internal)]).is_empty());
    }

    #[test]
    fn internal_only_resolution_is_e032() {
        let caller = module(
            "m1",
            "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @hidden(i32 %x)\n  ret i32 %r\n}",
        );
        let holder = module(
            "m2",
            "define internal i32 @hidden(i32 %x) {\nentry:\n  ret i32 %x\n}",
        );
        let diags = check_program(&[caller.clone(), holder]);
        assert_eq!(codes_of(&diags), vec![codes::INTERNAL_LEAK]);
        assert_eq!(diags[0].module, "m1");
        assert!(diags[0].message.contains("m2"));
        // With no definition anywhere it is an ordinary library external.
        assert!(check_program(&[caller]).is_empty());
    }
}
