//! Diagnostics: stable codes, severities, provenance and JSON emission.
//!
//! Codes are append-only: `E0xx` are errors (the program is ill-formed or a
//! merge invariant is broken), `W1xx` are warnings (suspicious but linkable),
//! `L2xx` are lints (advisory; e.g. missed-optimization opportunities). The
//! verifier's own `E001`–`E007` codes live in [`ssa_ir::verifier::codes`] and
//! are re-exported through [`CODE_TABLE`] so `salssa lint` documents one
//! unified table.

use std::fmt;

/// Severity of a diagnostic, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program is ill-formed, will not link, or a merge invariant is
    /// broken. `salssa lint` exits non-zero when any error is reported.
    Error,
    /// Suspicious but not ill-formed; deniable with `--deny warnings`.
    Warning,
    /// Advisory finding (dead code, missed dedup); never affects the exit
    /// code unless denied by code.
    Lint,
}

impl Severity {
    /// Lowercase name used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Lint => "lint",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Analysis-crate diagnostic codes (the verifier's `E001`–`E007` are defined
/// in [`ssa_ir::verifier::codes`]).
pub mod codes {
    /// Input file could not be parsed at all.
    pub const PARSE: &str = "E000";
    /// A call to a symbol in the reserved `merged.` namespace that the
    /// module neither defines nor declares. Merged functions are
    /// compiler-generated, so an unresolvable reference to one is always a
    /// merge-pipeline bug, never a legitimate external.
    pub const DANGLING_MERGED_CALLEE: &str = "E010";
    /// A call site disagrees with the in-module definition or declaration
    /// of its callee (argument count, argument types, or return type).
    pub const CALL_SIGNATURE: &str = "E011";
    /// A forwarding thunk (single block tail-calling a `merged.` function)
    /// violates the thunk shape: wrong argument count, non-constant
    /// discriminator, or a return type disagreeing with the merged callee.
    pub const THUNK_SHAPE: &str = "E020";
    /// A merged function's discriminator parameter is missing, not `i1`, or
    /// escapes into something other than a branch/select condition (so the
    /// dispatch would not constant-fold at a thunk's constant call site).
    pub const DISCRIMINATOR: &str = "E021";
    /// A `declare` disagrees with the definition it resolves to under
    /// linker resolution (own module first, then the first externally
    /// visible definition in corpus order).
    pub const DECL_SIGNATURE: &str = "E030";
    /// Two externally visible definitions of the same symbol have different
    /// bodies or signatures — an ODR violation the linker would reject (or
    /// silently resolve arbitrarily).
    pub const ODR_CLASH: &str = "E031";
    /// A cross-module reference resolves only to internal-linkage
    /// definitions, which never participate in cross-module resolution.
    pub const INTERNAL_LEAK: &str = "E032";
    /// A basic block is unreachable from the entry block.
    pub const UNREACHABLE_BLOCK: &str = "W101";
    /// A function parameter is never used (forwarding thunks and the
    /// discriminator parameter of merged functions are exempt).
    pub const DEAD_PARAM: &str = "L201";
    /// The same externally visible function is defined identically in
    /// several modules — a dedup opportunity for `salssa xmerge`.
    pub const DUPLICATE_DEFINITION: &str = "L202";
}

/// The documented code table: `(code, severity, summary)` for every
/// diagnostic the engine can produce, in code order.
pub const CODE_TABLE: &[(&str, Severity, &str)] = &[
    (codes::PARSE, Severity::Error, "input file failed to parse"),
    (
        ssa_ir::verifier::codes::NO_ENTRY,
        Severity::Error,
        "function has no entry block",
    ),
    (
        ssa_ir::verifier::codes::CFG,
        Severity::Error,
        "malformed control-flow structure",
    ),
    (
        ssa_ir::verifier::codes::TYPES,
        Severity::Error,
        "instruction type-rule violation",
    ),
    (
        ssa_ir::verifier::codes::DANGLING_VALUE,
        Severity::Error,
        "operand references a dangling value",
    ),
    (
        ssa_ir::verifier::codes::PHI,
        Severity::Error,
        "phi incoming edges disagree with predecessors",
    ),
    (
        ssa_ir::verifier::codes::LANDING_PAD,
        Severity::Error,
        "landing-pad placement violation",
    ),
    (
        ssa_ir::verifier::codes::DOMINANCE,
        Severity::Error,
        "SSA dominance violation",
    ),
    (
        codes::DANGLING_MERGED_CALLEE,
        Severity::Error,
        "call to an undefined, undeclared merged.* function",
    ),
    (
        codes::CALL_SIGNATURE,
        Severity::Error,
        "call site disagrees with its in-module callee signature",
    ),
    (
        codes::THUNK_SHAPE,
        Severity::Error,
        "forwarding thunk violates the thunk shape invariant",
    ),
    (
        codes::DISCRIMINATOR,
        Severity::Error,
        "merged-function discriminator is malformed or escapes",
    ),
    (
        codes::DECL_SIGNATURE,
        Severity::Error,
        "declaration disagrees with its linker-resolved definition",
    ),
    (
        codes::ODR_CLASH,
        Severity::Error,
        "conflicting externally visible definitions (ODR violation)",
    ),
    (
        codes::INTERNAL_LEAK,
        Severity::Error,
        "cross-module reference resolves only to internal definitions",
    ),
    (
        codes::UNREACHABLE_BLOCK,
        Severity::Warning,
        "basic block unreachable from entry",
    ),
    (codes::DEAD_PARAM, Severity::Lint, "parameter is never used"),
    (
        codes::DUPLICATE_DEFINITION,
        Severity::Lint,
        "identical external definition duplicated across modules",
    ),
];

/// The severity of a known code; `None` for unknown codes.
pub fn severity_of(code: &str) -> Option<Severity> {
    CODE_TABLE
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, s, _)| *s)
}

/// One analysis finding with stable code, severity and full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`E0xx`/`W1xx`/`L2xx`).
    pub code: &'static str,
    /// Severity derived from the code's tier.
    pub severity: Severity,
    /// Module provenance; empty only for cached entries before re-homing.
    pub module: String,
    /// Function provenance; empty for module- and program-scope findings.
    pub function: String,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic, deriving the severity from the code table.
    pub fn new(
        code: &'static str,
        module: impl Into<String>,
        function: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: severity_of(code).unwrap_or(Severity::Error),
            module: module.into(),
            function: function.into(),
            message: message.into(),
        }
    }

    /// Stable identity used for new-vs-baseline delta tracking in paranoid
    /// mode: two runs report "the same" diagnostic iff the fingerprints
    /// match.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.code, self.module, self.function, self.message
        )
    }

    /// Serializes the diagnostic as one JSON object.
    pub fn json(&self) -> String {
        format!(
            r#"{{"code":"{}","severity":"{}","module":"{}","function":"{}","message":"{}"}}"#,
            self.code,
            self.severity,
            json_escape(&self.module),
            json_escape(&self.function),
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: ", self.severity, self.code)?;
        if !self.module.is_empty() {
            write!(f, "{}: ", self.module)?;
        }
        if !self.function.is_empty() {
            write!(f, "@{}: ", self.function)?;
        }
        f.write_str(&self.message)
    }
}

/// The set of diagnostics a lint run refuses to tolerate: errors always, an
/// optional escalation of all `W1xx` warnings, and any explicitly denied
/// codes (`--deny <code>` accepts warnings and lints alike).
#[derive(Debug, Clone, Default)]
pub struct DenySet {
    /// Escalate every warning to a failure (`--deny warnings`). Lints
    /// (`L2xx`) are *not* covered — deny those by code.
    pub warnings: bool,
    /// Individually denied codes.
    pub codes: std::collections::BTreeSet<String>,
}

impl DenySet {
    /// Returns `true` when `d` should fail the run: every error does, plus
    /// whatever the set escalates.
    pub fn rejects(&self, d: &Diagnostic) -> bool {
        match d.severity {
            Severity::Error => true,
            Severity::Warning => self.warnings || self.codes.contains(d.code),
            Severity::Lint => self.codes.contains(d.code),
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal (this crate sits
/// below `xmerge` in the dependency graph, so it carries its own copy).
pub fn json_escape(s: &str) -> String {
    use fmt::Write;
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_table_is_unique_and_tier_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (code, severity, _) in CODE_TABLE {
            assert!(seen.insert(*code), "duplicate code {code}");
            let expected = match code.as_bytes()[0] {
                b'E' => Severity::Error,
                b'W' => Severity::Warning,
                b'L' => Severity::Lint,
                _ => panic!("code {code} outside the E/W/L tiers"),
            };
            assert_eq!(*severity, expected, "{code} severity disagrees with tier");
        }
    }

    #[test]
    fn display_and_fingerprint_carry_provenance() {
        let d = Diagnostic::new(codes::THUNK_SHAPE, "m1", "f", "bad thunk");
        assert_eq!(d.to_string(), "error[E020]: m1: @f: bad thunk");
        assert_eq!(d.fingerprint(), "E020|m1|f|bad thunk");
        let p = Diagnostic::new(codes::ODR_CLASH, "m1", "", "clash");
        assert_eq!(p.to_string(), "error[E031]: m1: clash");
    }

    #[test]
    fn json_is_escaped() {
        let d = Diagnostic::new(codes::PARSE, "m\"1", "", "bad\nline");
        assert!(d.json().contains(r#""module":"m\"1""#));
        assert!(d.json().contains(r#""message":"bad\nline""#));
    }
}
