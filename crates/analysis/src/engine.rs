//! The analysis engine: pass scheduling, verdict caching and reporting.
//!
//! Per-function verdicts are cached by the function's [structural
//! key](ssa_ir::Function::structural_key) (plus whether its name lies in the
//! reserved `merged.` namespace, the one name-derived fact the passes
//! consult); per-module verdicts by [`Module::content_hash`]. Cached entries
//! are stored provenance-free and re-homed to the requesting module and
//! function on retrieval, so structurally identical functions — clone
//! families, ODR duplicates — are analyzed once per process. The planner's
//! paranoid mode leans on this: re-linting a corpus after a commit only pays
//! for the functions the commit actually changed.

use crate::diag::{Diagnostic, Severity};
use crate::passes;
use rayon::prelude::*;
use ssa_ir::Module;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Counters and timing of one engine call (or a whole paranoid run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Modules analyzed.
    pub modules: usize,
    /// Function definitions analyzed (cached or not).
    pub functions: usize,
    /// Verdicts served from the function- or module-level cache.
    pub cache_hits: u64,
    /// Verdicts computed by running passes.
    pub cache_misses: u64,
    /// Wall-clock time spent inside the engine.
    pub elapsed: Duration,
}

impl AnalysisStats {
    /// Folds another call's statistics into this one.
    pub fn absorb(&mut self, other: AnalysisStats) {
        self.modules += other.modules;
        self.functions += other.functions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.elapsed += other.elapsed;
    }

    /// Cache hit rate in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The result of one analysis call: diagnostics in deterministic order plus
/// the engine statistics for the call.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All diagnostics, sorted by (module, function, code, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Cache and timing statistics of this call.
    pub stats: AnalysisStats,
}

impl AnalysisReport {
    /// Diagnostic counts per severity: `(errors, warnings, lints)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        count_severities(&self.diagnostics)
    }

    /// The fingerprint set of the report's diagnostics (paranoid baselines).
    pub fn fingerprints(&self) -> HashSet<String> {
        self.diagnostics
            .iter()
            .map(Diagnostic::fingerprint)
            .collect()
    }
}

/// Diagnostic counts per severity: `(errors, warnings, lints)`.
pub fn count_severities(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => counts.0 += 1,
            Severity::Warning => counts.1 += 1,
            Severity::Lint => counts.2 += 1,
        }
    }
    counts
}

/// Diagnostic counts per code, in code order.
pub fn count_by_code(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for d in diags {
        *counts.entry(d.code).or_insert(0) += 1;
    }
    counts
}

/// Cache key of a function verdict: the structural key plus the one
/// name-derived fact the passes consult (membership in the `merged.`
/// namespace, which switches the discriminator and dead-parameter rules).
type FnKey = (bool, Arc<str>);

/// The whole-program analysis engine. Cheap to create; share one across a
/// planner run to let verdicts accumulate.
#[derive(Debug, Default)]
pub struct AnalysisEngine {
    fn_cache: Mutex<HashMap<FnKey, Arc<Vec<Diagnostic>>>>,
    mod_cache: Mutex<HashMap<u64, Arc<Vec<Diagnostic>>>>,
    full_cache: Mutex<HashMap<u64, Arc<Vec<Diagnostic>>>>,
    prog_cache: Mutex<HashMap<u64, Arc<Vec<Diagnostic>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisEngine {
    /// Creates an engine with empty caches.
    pub fn new() -> AnalysisEngine {
        AnalysisEngine::default()
    }

    /// `(hits, misses)` accumulated over the engine's lifetime.
    pub fn cache_counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Function-scope verdicts for one function, re-homed to `module_name`.
    fn function_diags(&self, f: &ssa_ir::Function, module_name: &str) -> Vec<Diagnostic> {
        let key: FnKey = (passes::is_merged_name(&f.name), f.structural_key());
        let cached = self.fn_cache.lock().unwrap().get(&key).cloned();
        let verdict = match cached {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let v = Arc::new(passes::check_function(f));
                self.fn_cache.lock().unwrap().insert(key, v.clone());
                v
            }
        };
        verdict
            .iter()
            .map(|d| {
                let mut d = d.clone();
                d.module = module_name.to_string();
                d.function = f.name.clone();
                d
            })
            .collect()
    }

    /// Module-scope verdicts (cached by content hash), re-homed to the
    /// module's name.
    fn module_diags(&self, m: &Module) -> Vec<Diagnostic> {
        let key = m.content_hash();
        let cached = self.mod_cache.lock().unwrap().get(&key).cloned();
        let verdict = match cached {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let v = Arc::new(passes::check_module(m));
                self.mod_cache.lock().unwrap().insert(key, v.clone());
                v
            }
        };
        verdict
            .iter()
            .map(|d| {
                let mut d = d.clone();
                d.module = m.name.clone();
                d
            })
            .collect()
    }

    /// Every function- and module-scope verdict of one module, cached as a
    /// block by [`Module::content_hash`]. A hit skips the per-function walk
    /// (and its per-function lock traffic) entirely; function provenance is
    /// baked into the cached block because function names are part of the
    /// content hash, so only the module field needs re-homing.
    fn module_report_diags(&self, m: &Module, key: u64) -> Vec<Diagnostic> {
        let cached = self.full_cache.lock().unwrap().get(&key).cloned();
        if let Some(v) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v
                .iter()
                .map(|d| {
                    let mut d = d.clone();
                    d.module = m.name.clone();
                    d
                })
                .collect();
        }
        let mut per_fn: Vec<Vec<Diagnostic>> = m
            .functions()
            .par_iter()
            .map(|f| self.function_diags(f, &m.name))
            .collect();
        per_fn.push(self.module_diags(m));
        let flat: Vec<Diagnostic> = per_fn.into_iter().flatten().collect();
        self.full_cache
            .lock()
            .unwrap()
            .insert(key, Arc::new(flat.clone()));
        flat
    }

    /// Program-scope verdicts (cached by the fold of every module's name and
    /// content hash). Program diagnostics already carry their provenance, so
    /// cached verdicts are returned verbatim.
    fn program_diags(&self, modules: &[Module], content_hashes: &[u64]) -> Vec<Diagnostic> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for (m, h) in modules.iter().zip(content_hashes) {
            m.name.hash(&mut hasher);
            h.hash(&mut hasher);
        }
        let key = hasher.finish();
        let cached = self.prog_cache.lock().unwrap().get(&key).cloned();
        let verdict = match cached {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let v = Arc::new(passes::check_program(modules));
                self.prog_cache.lock().unwrap().insert(key, v.clone());
                v
            }
        };
        verdict.as_ref().clone()
    }

    /// Analyzes one module: function-scope passes over every definition (in
    /// parallel) plus the module-scope passes. Program-scope passes need a
    /// corpus and do not run here.
    pub fn analyze_module(&self, m: &Module) -> AnalysisReport {
        let start = Instant::now();
        let before = self.cache_counters();
        let diagnostics = self.module_report_diags(m, m.content_hash());
        self.finish(diagnostics, 1, m.num_functions(), before, start)
    }

    /// Analyzes a whole corpus: every module (in parallel) plus the
    /// program-scope passes under linker resolution.
    pub fn analyze_program(&self, modules: &[Module]) -> AnalysisReport {
        let _span =
            telemetry::span_with("analysis.program", || format!("{} modules", modules.len()));
        let start = Instant::now();
        let before = self.cache_counters();
        // One content-hash sweep per call, shared by the per-module block
        // cache and the program-verdict cache key.
        let per_module: Vec<(u64, Vec<Diagnostic>)> = modules
            .par_iter()
            .map(|m| {
                let key = m.content_hash();
                (key, self.module_report_diags(m, key))
            })
            .collect();
        let hashes: Vec<u64> = per_module.iter().map(|(h, _)| *h).collect();
        let mut diagnostics: Vec<Diagnostic> =
            per_module.into_iter().flat_map(|(_, d)| d).collect();
        diagnostics.extend(self.program_diags(modules, &hashes));
        let functions = modules.iter().map(Module::num_functions).sum();
        self.finish(diagnostics, modules.len(), functions, before, start)
    }

    fn finish(
        &self,
        mut diagnostics: Vec<Diagnostic>,
        modules: usize,
        functions: usize,
        before: (u64, u64),
        start: Instant,
    ) -> AnalysisReport {
        diagnostics.sort_by(|a, b| {
            (&a.module, &a.function, a.code, &a.message).cmp(&(
                &b.module,
                &b.function,
                b.code,
                &b.message,
            ))
        });
        let after = self.cache_counters();
        AnalysisReport {
            diagnostics,
            stats: AnalysisStats {
                modules,
                functions,
                cache_hits: after.0 - before.0,
                cache_misses: after.1 - before.1,
                elapsed: start.elapsed(),
            },
        }
    }
}

/// Per-commit delta verification for the planners' paranoid mode.
///
/// A monitor captures the diagnostic fingerprint set of the input as a
/// baseline, then re-analyzes after every committed merge. Diagnostics whose
/// fingerprint is not in the baseline are *delta* diagnostics — regressions
/// the commit introduced. Each new fingerprint is absorbed into the baseline
/// after being reported, so a regression is counted once, not once per
/// subsequent check. The monitor only observes: it never influences commit
/// decisions, which is what makes `--paranoid` runs bit-identical to plain
/// runs.
#[derive(Debug)]
pub struct ParanoidMonitor {
    engine: AnalysisEngine,
    baseline: HashSet<String>,
    delta: Vec<Diagnostic>,
    checks: usize,
    stats: AnalysisStats,
}

impl ParanoidMonitor {
    /// Captures the baseline of a single module (intra-module planner).
    pub fn for_module(m: &Module) -> ParanoidMonitor {
        let engine = AnalysisEngine::new();
        let report = engine.analyze_module(m);
        ParanoidMonitor::from_baseline(engine, report)
    }

    /// Captures the baseline of a whole corpus (cross-module pipeline).
    pub fn for_corpus(modules: &[Module]) -> ParanoidMonitor {
        let engine = AnalysisEngine::new();
        let report = engine.analyze_program(modules);
        ParanoidMonitor::from_baseline(engine, report)
    }

    fn from_baseline(engine: AnalysisEngine, report: AnalysisReport) -> ParanoidMonitor {
        ParanoidMonitor {
            engine,
            baseline: report.fingerprints(),
            delta: Vec::new(),
            checks: 0,
            stats: report.stats,
        }
    }

    /// Re-analyzes one module after a commit, recording new diagnostics.
    /// Returns how many the commit introduced.
    pub fn check_module(&mut self, m: &Module) -> usize {
        let _span = telemetry::span_with("paranoid.check_module", || m.name.clone());
        let report = self.engine.analyze_module(m);
        self.absorb(report)
    }

    /// Re-analyzes the whole corpus (including the program-scope passes),
    /// recording new diagnostics. Returns how many were introduced.
    pub fn check_corpus(&mut self, modules: &[Module]) -> usize {
        let _span = telemetry::span_with("paranoid.check_corpus", || {
            format!("{} modules", modules.len())
        });
        let report = self.engine.analyze_program(modules);
        self.absorb(report)
    }

    fn absorb(&mut self, report: AnalysisReport) -> usize {
        self.checks += 1;
        self.stats.absorb(report.stats);
        let mut new = 0;
        for d in report.diagnostics {
            if self.baseline.insert(d.fingerprint()) {
                self.delta.push(d);
                new += 1;
            }
        }
        new
    }

    /// Diagnostics introduced since the baseline, in discovery order.
    pub fn delta(&self) -> &[Diagnostic] {
        &self.delta
    }

    /// Consumes the monitor, yielding the delta diagnostics.
    pub fn into_delta(self) -> Vec<Diagnostic> {
        self.delta
    }

    /// Number of post-commit checks performed (baseline excluded).
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// Aggregate engine statistics over the baseline and every check.
    pub fn stats(&self) -> AnalysisStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::codes;
    use ssa_ir::parse_module;

    fn module(name: &str, text: &str) -> Module {
        let mut m = parse_module(text).expect("test IR parses");
        m.name = name.to_string();
        m
    }

    const DEAD_PARAM_FN: &str = "define i32 @f(i32 %x, i32 %unused) {\nentry:\n  ret i32 %x\n}";

    #[test]
    fn verdicts_are_cached_and_rehomed() {
        let engine = AnalysisEngine::new();
        let m1 = module("m1", DEAD_PARAM_FN);
        // Same content under another module and function name: structurally
        // identical, so the second analysis is served from the cache but
        // re-homed to the new provenance.
        let m2 = module("m2", &DEAD_PARAM_FN.replace("@f", "@g"));
        let r1 = engine.analyze_module(&m1);
        assert_eq!(r1.counts(), (0, 0, 1));
        assert_eq!(
            (
                r1.diagnostics[0].module.as_str(),
                r1.diagnostics[0].function.as_str()
            ),
            ("m1", "f")
        );
        assert!(r1.stats.cache_misses > 0);
        let r2 = engine.analyze_module(&m2);
        assert_eq!(r2.counts(), (0, 0, 1));
        assert_eq!(
            (
                r2.diagnostics[0].module.as_str(),
                r2.diagnostics[0].function.as_str()
            ),
            ("m2", "g")
        );
        assert_eq!(
            r2.stats.cache_misses, 1,
            "only the module verdict is recomputed"
        );
        assert_eq!(
            r2.stats.cache_hits, 1,
            "the function verdict is a cache hit"
        );
        // Re-analyzing the identical module is a pure cache hit.
        let r3 = engine.analyze_module(&m1);
        assert_eq!(r3.stats.cache_misses, 0);
        assert_eq!(r3.stats.hit_rate(), 1.0);
    }

    #[test]
    fn merged_namespace_is_part_of_the_cache_key() {
        // Identical bodies, one under the merged namespace: the verdicts
        // differ (discriminator rules), so they must not share a cache slot.
        let engine = AnalysisEngine::new();
        let plain = module(
            "m",
            "define i32 @f(i1 %c, i32 %x) {\nentry:\n  %z = zext i1 %c to i32\n  %r = add i32 %z, %x\n  ret i32 %r\n}",
        );
        let merged = module(
            "m",
            "define i32 @merged.a.b(i1 %c, i32 %x) {\nentry:\n  %z = zext i1 %c to i32\n  %r = add i32 %z, %x\n  ret i32 %r\n}",
        );
        assert!(engine.analyze_module(&plain).diagnostics.is_empty());
        let r = engine.analyze_module(&merged);
        assert_eq!(r.counts().0, 1);
        assert_eq!(r.diagnostics[0].code, codes::DISCRIMINATOR);
    }

    #[test]
    fn analyze_program_includes_program_scope() {
        let engine = AnalysisEngine::new();
        let body = "define i32 @dup(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}";
        let report = engine.analyze_program(&[module("m1", body), module("m2", body)]);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            vec![codes::DUPLICATE_DEFINITION]
        );
        assert_eq!(report.stats.modules, 2);
        assert_eq!(report.stats.functions, 2);
    }

    #[test]
    fn paranoid_monitor_reports_only_the_delta() {
        // The baseline already contains a dead parameter; only the
        // regression introduced afterwards shows up as delta, and only once.
        let mut m = module("m", DEAD_PARAM_FN);
        let mut monitor = ParanoidMonitor::for_module(&m);
        assert_eq!(monitor.check_module(&m), 0, "unchanged module: no delta");
        let f = parse_module("define i32 @merged.x.y(i32 %fid, i32 %x) {\nentry:\n  ret i32 %x\n}")
            .unwrap()
            .functions()[0]
            .clone();
        m.add_function(f);
        assert_eq!(monitor.check_module(&m), 1, "the bad merged fn is new");
        assert_eq!(monitor.check_module(&m), 0, "absorbed into the baseline");
        assert_eq!(monitor.delta().len(), 1);
        assert_eq!(monitor.delta()[0].code, codes::DISCRIMINATOR);
        assert_eq!(monitor.checks(), 3);
        assert!(monitor.stats().cache_hits > 0);
    }
}
