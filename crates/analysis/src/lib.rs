//! # `analysis` — whole-program static analysis and linting
//!
//! SalSSA rewrites programs: it splices function bodies together, swaps
//! bodies for forwarding thunks and sprinkles `declare`s across modules. The
//! existing [`ssa_ir::verifier`] checks each function in isolation, but the
//! invariants a *merge* can break are mostly not function-local: a thunk's
//! signature must agree with the merged function it forwards to, a donated
//! `declare` must agree with the definition it resolves to in another
//! module, and two externally visible definitions of one symbol must stay
//! ODR-interchangeable. This crate is the analysis layer that checks all of
//! it:
//!
//! * [`diag`] — [`Diagnostic`]s with stable, append-only codes
//!   (`E0xx` errors / `W1xx` warnings / `L2xx` lints; see [`CODE_TABLE`]),
//!   function *and* module provenance, and machine-readable JSON output;
//! * [`passes`] — the checks, grouped by the scope they read:
//!   per-function (verifier wrap, unreachable blocks, dead parameters,
//!   merged-function discriminator), per-module (dangling `merged.*`
//!   callees, call-site signatures, thunk shape) and whole-program
//!   (declaration/definition agreement, ODR consistency and
//!   internal-symbol leaks under the `callgraph` crate's linker-resolution
//!   rules);
//! * [`engine`] — the [`AnalysisEngine`]: per-function passes run in
//!   parallel and every verdict is cached, keyed by
//!   [`ssa_ir::Function::structural_key`] (functions) and
//!   [`ssa_ir::Module::content_hash`] (modules), so re-linting an almost
//!   unchanged corpus is nearly free; and the [`ParanoidMonitor`] the
//!   planners use in `--paranoid` mode to re-analyze after every committed
//!   merge and report only the *delta* against the input's baseline.
//!
//! The CLI surface is `salssa lint <dir|file.ll>`; the planner surface is
//! `DriverConfig::with_paranoid` / `XMergeConfig::with_paranoid`.
//!
//! ## Example
//!
//! ```rust
//! use analysis::AnalysisEngine;
//! use ssa_ir::parse_module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = parse_module(
//!     "define i32 @id(i32 %x, i32 %unused) {\nentry:\n  ret i32 %x\n}",
//! )?;
//! m.name = "m".to_string();
//! let report = AnalysisEngine::new().analyze_module(&m);
//! assert_eq!(report.counts(), (0, 0, 1)); // L201: %unused is dead
//! assert_eq!(report.diagnostics[0].code, analysis::codes::DEAD_PARAM);
//! # Ok(())
//! # }
//! ```

pub mod diag;
pub mod engine;
pub mod passes;

pub use diag::{codes, severity_of, DenySet, Diagnostic, Severity, CODE_TABLE};
pub use engine::{
    count_by_code, count_severities, AnalysisEngine, AnalysisReport, AnalysisStats, ParanoidMonitor,
};
pub use passes::{forwarding_callee, is_merged_name, MERGED_PREFIX};

/// The verifier's codes, re-exported so consumers see one namespace.
pub use ssa_ir::verifier::codes as verifier_codes;
