//! # `ssa_ir` — a compact SSA intermediate representation
//!
//! This crate is the substrate of the reproduction of *Effective Function
//! Merging in the SSA Form* (Rocha et al., PLDI 2020). It provides everything
//! the merging algorithms need from an LLVM-like IR:
//!
//! * a first-order [`Type`] system and [`Value`]s (constants, arguments,
//!   instruction results),
//! * [`InstKind`]s covering arithmetic, comparisons, selects, calls/invokes
//!   with landing pads, memory operations, casts, phi-nodes and terminators,
//! * mutable [`Function`]s made of basic blocks, plus [`Module`]s,
//! * a [`builder::FunctionBuilder`], a textual [`printer`] and [`parser`],
//! * analyses: [`dominators::DomTree`], [`liveness::Liveness`],
//! * a [`verifier`] that checks structural, type and SSA dominance rules,
//! * and a [`linker`] for symbol renaming, cross-module function import with
//!   ODR-style deduplication, and whole-program linking.
//!
//! ## Example
//!
//! ```rust
//! use ssa_ir::{parse_function, print_function, verifier};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = parse_function(
//!     "define i32 @double(i32 %x) {\nentry:\n  %r = add i32 %x, %x\n  ret i32 %r\n}",
//! )?;
//! assert!(verifier::verify_function(&f).is_empty());
//! println!("{}", print_function(&f));
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod dominators;
pub mod function;
pub mod ids;
pub mod instruction;
pub mod linker;
pub mod liveness;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verifier;

pub use builder::FunctionBuilder;
pub use dominators::DomTree;
pub use function::{structural_key_counters, BlockData, Function, Linkage};
pub use ids::{Arena, BlockId, EntityId, InstId};
pub use instruction::{BinOp, CastKind, ICmpPred, InstData, InstKind};
pub use linker::{
    callees_of, import_function, link_modules, link_modules_with_renames, localized_symbol,
    rename_symbol, sanitize_symbol, structurally_equal, ImportOutcome, LinkError, LinkRenames,
};
pub use module::{FuncDecl, Module};
pub use parser::{
    parse_function, parse_module, parse_module_recovering, ParseError, RecoveredModule,
    SkippedFunction,
};
pub use printer::{print_function, print_module, Namer};
pub use types::Type;
pub use value::{Constant, Value};
