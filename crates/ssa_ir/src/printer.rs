//! Textual printer producing an LLVM-like syntax.
//!
//! The format is accepted back by [`crate::parser`], which the test suite uses
//! for round-trip property testing.

use crate::function::Function;
use crate::ids::{BlockId, InstId};
use crate::instruction::InstKind;
use crate::module::Module;
use crate::types::Type;
use crate::value::{Constant, Value};
use std::collections::HashMap;
use std::fmt::Write;

/// Pretty-prints a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", module.name);
    for decl in module.declarations() {
        let params = decl
            .params
            .iter()
            .map(Type::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let linkage = match decl.linkage {
            crate::function::Linkage::External => "",
            crate::function::Linkage::Internal => "internal ",
        };
        let _ = writeln!(
            out,
            "declare {}{} @{}({})",
            linkage, decl.ret_ty, decl.name, params
        );
    }
    if !module.declarations().is_empty() {
        out.push('\n');
    }
    for (i, f) in module.functions().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f));
    }
    out
}

/// Pretty-prints a single function.
pub fn print_function(function: &Function) -> String {
    print_function_as(function, &function.name)
}

/// Pretty-prints a function with its own symbol name — and every
/// self-recursive call — replaced by `placeholder`, producing the
/// name-independent structural key used by [`crate::structurally_equal`]
/// without cloning the function.
pub(crate) fn print_function_normalized(function: &Function, placeholder: &str) -> String {
    print_function_as(function, placeholder)
}

fn print_function_as(function: &Function, symbol: &str) -> String {
    let namer = Namer::new(function);
    let mut out = String::new();
    let params = function
        .params
        .iter()
        .enumerate()
        .map(|(i, ty)| format!("{} %{}", ty, namer.arg_name(i)))
        .collect::<Vec<_>>()
        .join(", ");
    let linkage = match function.linkage {
        crate::function::Linkage::External => "",
        crate::function::Linkage::Internal => "internal ",
    };
    let _ = writeln!(
        out,
        "define {}{} @{}({}) {{",
        linkage, function.ret_ty, symbol, params
    );
    // When printing under a placeholder name, self-calls follow the rename so
    // mutually-independent recursive clones produce identical keys.
    let callee_alias = (symbol != function.name).then_some((function.name.as_str(), symbol));
    for (idx, block) in function.block_ids().enumerate() {
        if idx > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "{}:", namer.block_name(block));
        let data = function.block(block);
        for inst in data.all_insts() {
            let mut line = print_inst(function, &namer, inst);
            if let Some((from, to)) = callee_alias {
                match &function.inst(inst).kind {
                    InstKind::Call { callee, .. } | InstKind::Invoke { callee, .. }
                        if callee == from =>
                    {
                        line = line.replacen(&format!("@{from}("), &format!("@{to}("), 1);
                    }
                    _ => {}
                }
            }
            let _ = writeln!(out, "  {line}");
        }
    }
    out.push_str("}\n");
    out
}

/// Formats a single instruction (without trailing newline). Public because
/// merge reports and examples print individual instructions.
pub fn print_inst(function: &Function, namer: &Namer, inst: InstId) -> String {
    let data = function.inst(inst);
    let val = |v: Value| namer.value(function, v);
    let tval = |v: Value| format!("{} {}", function.value_type(v), namer.value(function, v));
    let label = |b: BlockId| format!("label %{}", namer.block_name(b));
    let lhs = if data.ty.is_first_class() {
        format!("%{} = ", namer.inst_name(inst))
    } else {
        String::new()
    };
    let body = match &data.kind {
        InstKind::Binary { op, lhs, rhs } => {
            format!(
                "{} {} {}, {}",
                op,
                function.value_type(*lhs),
                val(*lhs),
                val(*rhs)
            )
        }
        InstKind::ICmp { pred, lhs, rhs } => format!(
            "icmp {} {} {}, {}",
            pred,
            function.value_type(*lhs),
            val(*lhs),
            val(*rhs)
        ),
        InstKind::Select {
            cond,
            if_true,
            if_false,
        } => format!(
            "select {}, {}, {}",
            tval(*cond),
            tval(*if_true),
            tval(*if_false)
        ),
        InstKind::Call { callee, args } => format!(
            "call {} @{}({})",
            data.ty,
            callee,
            args.iter().map(|a| tval(*a)).collect::<Vec<_>>().join(", ")
        ),
        InstKind::Invoke {
            callee,
            args,
            normal,
            unwind,
        } => format!(
            "invoke {} @{}({}) to {} unwind {}",
            data.ty,
            callee,
            args.iter().map(|a| tval(*a)).collect::<Vec<_>>().join(", "),
            label(*normal),
            label(*unwind)
        ),
        InstKind::LandingPad => "landingpad".to_string(),
        InstKind::Resume { value } => format!("resume {}", tval(*value)),
        InstKind::Phi { incomings } => format!(
            "phi {} {}",
            data.ty,
            incomings
                .iter()
                .map(|(v, b)| format!("[ {}, %{} ]", val(*v), namer.block_name(*b)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        InstKind::Alloca { ty } => format!("alloca {ty}"),
        InstKind::Load { ptr } => format!("load {}, {}", data.ty, tval(*ptr)),
        InstKind::Store { value, ptr } => format!("store {}, {}", tval(*value), tval(*ptr)),
        InstKind::Gep {
            base,
            index,
            stride,
        } => {
            format!(
                "getelementptr {}, {}, stride {}",
                tval(*base),
                tval(*index),
                stride
            )
        }
        InstKind::Cast { kind, value } => format!("{} {} to {}", kind, tval(*value), data.ty),
        InstKind::Br { dest } => format!("br {}", label(*dest)),
        InstKind::CondBr {
            cond,
            if_true,
            if_false,
        } => {
            format!(
                "br {}, {}, {}",
                tval(*cond),
                label(*if_true),
                label(*if_false)
            )
        }
        InstKind::Switch {
            value,
            default,
            cases,
        } => format!(
            "switch {}, {} [ {} ]",
            tval(*value),
            label(*default),
            cases
                .iter()
                .map(|(c, b)| format!("{}: {}", c, label(*b)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        InstKind::Ret { value } => match value {
            Some(v) => format!("ret {}", tval(*v)),
            None => "ret void".to_string(),
        },
        InstKind::Unreachable => "unreachable".to_string(),
    };
    format!("{lhs}{body}")
}

/// Assigns stable, unique textual names to blocks, instruction results and
/// arguments for printing.
#[derive(Debug)]
pub struct Namer {
    block_names: HashMap<BlockId, String>,
    inst_names: HashMap<InstId, String>,
    arg_names: Vec<String>,
}

impl Namer {
    /// Builds a namer for one function.
    pub fn new(function: &Function) -> Namer {
        let mut used: HashMap<String, usize> = HashMap::new();
        let mut uniquify = |base: &str| -> String {
            let base = if base.is_empty() { "tmp" } else { base };
            let count = used.entry(base.to_string()).or_insert(0);
            let name = if *count == 0 {
                base.to_string()
            } else {
                format!("{base}.{count}")
            };
            *count += 1;
            name
        };

        let mut arg_names = Vec::new();
        for name in &function.param_names {
            arg_names.push(uniquify(name));
        }

        let mut block_names = HashMap::new();
        for block in function.block_ids() {
            block_names.insert(block, uniquify(&function.block(block).name));
        }

        let mut inst_names = HashMap::new();
        let mut counter = 0usize;
        for block in function.block_ids() {
            for inst in function.block(block).all_insts().collect::<Vec<_>>() {
                let data = function.inst(inst);
                if !data.ty.is_first_class() {
                    continue;
                }
                let base = match &data.name {
                    Some(n) => n.clone(),
                    None => {
                        counter += 1;
                        format!("t{counter}")
                    }
                };
                inst_names.insert(inst, uniquify(&base));
            }
        }
        Namer {
            block_names,
            inst_names,
            arg_names,
        }
    }

    /// Printable name of a block.
    pub fn block_name(&self, block: BlockId) -> &str {
        self.block_names
            .get(&block)
            .map(String::as_str)
            .unwrap_or("<dangling-block>")
    }

    /// Printable name of an instruction result.
    pub fn inst_name(&self, inst: InstId) -> &str {
        self.inst_names
            .get(&inst)
            .map(String::as_str)
            .unwrap_or("<unnamed>")
    }

    /// Printable name of an argument.
    pub fn arg_name(&self, index: usize) -> &str {
        self.arg_names
            .get(index)
            .map(String::as_str)
            .unwrap_or("<bad-arg>")
    }

    /// Textual form of a value operand (without its type).
    pub fn value(&self, _function: &Function, value: Value) -> String {
        match value {
            Value::Inst(id) => format!("%{}", self.inst_name(id)),
            Value::Arg(i) => format!("%{}", self.arg_name(i as usize)),
            Value::Const(Constant::Int { bits: 1, value }) => {
                if value != 0 {
                    "true".into()
                } else {
                    "false".into()
                }
            }
            Value::Const(c) => c.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::{BinOp, ICmpPred};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let t = b.create_block("then");
        let e = b.create_block("else");
        let j = b.create_block("join");
        b.switch_to(entry);
        let c = b.icmp(ICmpPred::Sgt, Value::Arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let a = b.binary(BinOp::Add, Value::Arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        let s = b.binary(BinOp::Sub, Value::Arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(a, t), (s, e)]);
        b.ret(Some(p));
        b.finish()
    }

    #[test]
    fn prints_function_shape() {
        let text = print_function(&diamond());
        assert!(text.starts_with("define i32 @diamond(i32 %arg0) {"));
        assert!(text.contains("entry:"));
        assert!(text.contains("icmp sgt i32 %arg0, 0"));
        assert!(text.contains("br i1 %"));
        assert!(text.contains("phi i32 [ %"));
        assert!(text.contains("ret i32 %"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn duplicate_names_are_uniquified() {
        let mut f = Function::new("f", vec![], Type::Void);
        let a = f.add_block("L");
        let b = f.add_block("L");
        f.append_inst(a, InstKind::Br { dest: b }, Type::Void);
        f.append_inst(b, InstKind::Ret { value: None }, Type::Void);
        let namer = Namer::new(&f);
        assert_ne!(namer.block_name(a), namer.block_name(b));
    }

    #[test]
    fn prints_module_with_declarations() {
        let mut m = Module::new("test");
        m.declare(crate::module::FuncDecl::new(
            "ext",
            vec![Type::I32],
            Type::Void,
        ));
        m.add_function(diamond());
        let text = print_module(&m);
        assert!(text.contains("; module test"));
        assert!(text.contains("declare void @ext(i32)"));
        assert!(text.contains("define i32 @diamond"));
    }

    #[test]
    fn bool_constants_print_as_keywords() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let entry = b.create_block("entry");
        b.switch_to(entry);
        let v = b.select(Value::bool(true), Value::i32(1), Value::i32(2));
        b.ret(Some(v));
        let text = print_function(&b.finish());
        assert!(text.contains("select i1 true, i32 1, i32 2"));
    }
}
