//! Instructions of the IR.
//!
//! The instruction set mirrors the subset of LLVM IR exercised by the paper:
//! integer/float arithmetic, comparisons, selects, calls/invokes with landing
//! pads, memory operations (`alloca`/`load`/`store`/`gep`), casts, phi-nodes
//! and the usual terminators.

use crate::ids::{BlockId, InstId};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// Binary arithmetic and bitwise operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// Returns `true` when `a op b == b op a`, which SalSSA exploits for
    /// operand reordering (Section 4.2 of the paper).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Returns `true` for the floating-point operators.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }

    /// All binary operators (useful for workload generation and tests).
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::SDiv,
            BinOp::UDiv,
            BinOp::SRem,
            BinOp::URem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ICmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl ICmpPred {
    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
            ICmpPred::Ult => "ult",
            ICmpPred::Ule => "ule",
            ICmpPred::Ugt => "ugt",
            ICmpPred::Uge => "uge",
        }
    }

    /// The predicate obtained by swapping the two operands.
    pub fn swapped(self) -> ICmpPred {
        match self {
            ICmpPred::Eq => ICmpPred::Eq,
            ICmpPred::Ne => ICmpPred::Ne,
            ICmpPred::Slt => ICmpPred::Sgt,
            ICmpPred::Sle => ICmpPred::Sge,
            ICmpPred::Sgt => ICmpPred::Slt,
            ICmpPred::Sge => ICmpPred::Sle,
            ICmpPred::Ult => ICmpPred::Ugt,
            ICmpPred::Ule => ICmpPred::Uge,
            ICmpPred::Ugt => ICmpPred::Ult,
            ICmpPred::Uge => ICmpPred::Ule,
        }
    }

    /// All predicates.
    pub fn all() -> &'static [ICmpPred] {
        &[
            ICmpPred::Eq,
            ICmpPred::Ne,
            ICmpPred::Slt,
            ICmpPred::Sle,
            ICmpPred::Sgt,
            ICmpPred::Sge,
            ICmpPred::Ult,
            ICmpPred::Ule,
            ICmpPred::Ugt,
            ICmpPred::Uge,
        ]
    }
}

impl fmt::Display for ICmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Cast operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CastKind {
    Trunc,
    ZExt,
    SExt,
    Bitcast,
    PtrToInt,
    IntToPtr,
    SIToFP,
    FPToSI,
}

impl CastKind {
    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Trunc => "trunc",
            CastKind::ZExt => "zext",
            CastKind::SExt => "sext",
            CastKind::Bitcast => "bitcast",
            CastKind::PtrToInt => "ptrtoint",
            CastKind::IntToPtr => "inttoptr",
            CastKind::SIToFP => "sitofp",
            CastKind::FPToSI => "fptosi",
        }
    }
}

impl fmt::Display for CastKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The operation performed by an instruction together with its operands.
#[derive(Clone, PartialEq, Debug)]
pub enum InstKind {
    /// Binary arithmetic/bitwise operation.
    Binary { op: BinOp, lhs: Value, rhs: Value },
    /// Integer (or pointer) comparison producing an `i1`.
    ICmp {
        pred: ICmpPred,
        lhs: Value,
        rhs: Value,
    },
    /// `select cond, if_true, if_false`.
    Select {
        cond: Value,
        if_true: Value,
        if_false: Value,
    },
    /// Direct call to a named function.
    Call { callee: String, args: Vec<Value> },
    /// Call with exceptional control flow (terminator).
    Invoke {
        callee: String,
        args: Vec<Value>,
        normal: BlockId,
        unwind: BlockId,
    },
    /// Landing pad: first non-phi instruction of an unwind destination.
    LandingPad,
    /// Resume exception propagation (terminator).
    Resume { value: Value },
    /// SSA phi-node. One incoming value per predecessor block.
    Phi { incomings: Vec<(Value, BlockId)> },
    /// Stack allocation of a slot holding a value of type `ty`.
    Alloca { ty: Type },
    /// Memory load through a pointer.
    Load { ptr: Value },
    /// Memory store through a pointer.
    Store { value: Value, ptr: Value },
    /// Pointer arithmetic: `base + index * stride` (a simplified GEP).
    Gep {
        base: Value,
        index: Value,
        stride: u32,
    },
    /// Type cast.
    Cast { kind: CastKind, value: Value },
    /// Unconditional branch (terminator).
    Br { dest: BlockId },
    /// Conditional branch (terminator).
    CondBr {
        cond: Value,
        if_true: BlockId,
        if_false: BlockId,
    },
    /// Multi-way switch (terminator).
    Switch {
        value: Value,
        default: BlockId,
        cases: Vec<(i64, BlockId)>,
    },
    /// Return (terminator).
    Ret { value: Option<Value> },
    /// Unreachable (terminator).
    Unreachable,
}

impl InstKind {
    /// Returns `true` for instructions that terminate a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Br { .. }
                | InstKind::CondBr { .. }
                | InstKind::Switch { .. }
                | InstKind::Ret { .. }
                | InstKind::Invoke { .. }
                | InstKind::Resume { .. }
                | InstKind::Unreachable
        )
    }

    /// Returns `true` for phi-nodes.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstKind::Phi { .. })
    }

    /// Returns `true` for instructions with side effects that must not be
    /// removed by dead-code elimination even if their result is unused.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            InstKind::Call { .. }
                | InstKind::Invoke { .. }
                | InstKind::Store { .. }
                | InstKind::Resume { .. }
                | InstKind::LandingPad
        ) || self.is_terminator()
    }

    /// A short mnemonic identifying the opcode (used by the printer, the
    /// fingerprints and the alignment matcher).
    pub fn opcode(&self) -> &'static str {
        match self {
            InstKind::Binary { op, .. } => op.mnemonic(),
            InstKind::ICmp { .. } => "icmp",
            InstKind::Select { .. } => "select",
            InstKind::Call { .. } => "call",
            InstKind::Invoke { .. } => "invoke",
            InstKind::LandingPad => "landingpad",
            InstKind::Resume { .. } => "resume",
            InstKind::Phi { .. } => "phi",
            InstKind::Alloca { .. } => "alloca",
            InstKind::Load { .. } => "load",
            InstKind::Store { .. } => "store",
            InstKind::Gep { .. } => "getelementptr",
            InstKind::Cast { kind, .. } => kind.mnemonic(),
            InstKind::Br { .. } => "br",
            InstKind::CondBr { .. } => "br",
            InstKind::Switch { .. } => "switch",
            InstKind::Ret { .. } => "ret",
            InstKind::Unreachable => "unreachable",
        }
    }

    /// A small dense integer identifying the opcode class, used by the
    /// fingerprint vectors of the candidate-ranking stage.
    pub fn opcode_class(&self) -> usize {
        match self {
            InstKind::Binary { op, .. } => *op as usize,
            InstKind::ICmp { .. } => 20,
            InstKind::Select { .. } => 21,
            InstKind::Call { .. } => 22,
            InstKind::Invoke { .. } => 23,
            InstKind::LandingPad => 24,
            InstKind::Resume { .. } => 25,
            InstKind::Phi { .. } => 26,
            InstKind::Alloca { .. } => 27,
            InstKind::Load { .. } => 28,
            InstKind::Store { .. } => 29,
            InstKind::Gep { .. } => 30,
            InstKind::Cast { kind, .. } => 31 + *kind as usize,
            InstKind::Br { .. } => 40,
            InstKind::CondBr { .. } => 41,
            InstKind::Switch { .. } => 42,
            InstKind::Ret { .. } => 43,
            InstKind::Unreachable => 44,
        }
    }

    /// Number of distinct opcode classes (size of fingerprint vectors).
    pub const NUM_OPCODE_CLASSES: usize = 48;

    /// Collects the value operands of the instruction, in a fixed order.
    pub fn operands(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_operand(|v| out.push(v));
        out
    }

    /// Calls `f` on each value operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Binary { lhs, rhs, .. } | InstKind::ICmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                f(*cond);
                f(*if_true);
                f(*if_false);
            }
            InstKind::Call { args, .. } | InstKind::Invoke { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::LandingPad | InstKind::Unreachable | InstKind::Alloca { .. } => {}
            InstKind::Resume { value } => f(*value),
            InstKind::Phi { incomings } => {
                for (v, _) in incomings {
                    f(*v);
                }
            }
            InstKind::Load { ptr } => f(*ptr),
            InstKind::Store { value, ptr } => {
                f(*value);
                f(*ptr);
            }
            InstKind::Gep { base, index, .. } => {
                f(*base);
                f(*index);
            }
            InstKind::Cast { value, .. } => f(*value),
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => f(*cond),
            InstKind::Switch { value, .. } => f(*value),
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
        }
    }

    /// Calls `f` on a mutable reference to each value operand.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            InstKind::Binary { lhs, rhs, .. } | InstKind::ICmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                f(cond);
                f(if_true);
                f(if_false);
            }
            InstKind::Call { args, .. } | InstKind::Invoke { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::LandingPad | InstKind::Unreachable | InstKind::Alloca { .. } => {}
            InstKind::Resume { value } => f(value),
            InstKind::Phi { incomings } => {
                for (v, _) in incomings {
                    f(v);
                }
            }
            InstKind::Load { ptr } => f(ptr),
            InstKind::Store { value, ptr } => {
                f(value);
                f(ptr);
            }
            InstKind::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            InstKind::Cast { value, .. } => f(value),
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => f(cond),
            InstKind::Switch { value, .. } => f(value),
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
        }
    }

    /// The successor blocks referenced by this instruction (terminators and
    /// phi-node incoming blocks reference blocks).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            InstKind::Br { dest } => vec![*dest],
            InstKind::CondBr {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            InstKind::Switch { default, cases, .. } => {
                let mut out = vec![*default];
                out.extend(cases.iter().map(|(_, b)| *b));
                out
            }
            InstKind::Invoke { normal, unwind, .. } => vec![*normal, *unwind],
            _ => Vec::new(),
        }
    }

    /// Calls `f` on a mutable reference to each referenced block label
    /// (terminator successors and phi incoming blocks).
    pub fn for_each_block_ref_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            InstKind::Br { dest } => f(dest),
            InstKind::CondBr {
                if_true, if_false, ..
            } => {
                f(if_true);
                f(if_false);
            }
            InstKind::Switch { default, cases, .. } => {
                f(default);
                for (_, b) in cases {
                    f(b);
                }
            }
            InstKind::Invoke { normal, unwind, .. } => {
                f(normal);
                f(unwind);
            }
            InstKind::Phi { incomings } => {
                for (_, b) in incomings {
                    f(b);
                }
            }
            _ => {}
        }
    }

    /// Replaces every operand equal to `from` with `to`. Returns the number
    /// of replacements performed.
    pub fn replace_value(&mut self, from: Value, to: Value) -> usize {
        let mut count = 0;
        self.for_each_operand_mut(|v| {
            if *v == from {
                *v = to;
                count += 1;
            }
        });
        count
    }
}

/// An instruction: its kind, result type, parent block and an optional name
/// hint used by the printer.
#[derive(Clone, Debug)]
pub struct InstData {
    /// The operation and operands.
    pub kind: InstKind,
    /// The type of the produced value (`Type::Void` when no value is produced).
    pub ty: Type,
    /// The basic block this instruction currently belongs to.
    pub block: BlockId,
    /// Optional human-readable name used when printing (`%name`).
    pub name: Option<String>,
}

/// Reference to an instruction paired with its id; convenient return type for
/// iteration helpers.
#[derive(Clone, Copy, Debug)]
pub struct InstRef<'a> {
    /// The id of the instruction.
    pub id: InstId,
    /// The instruction payload.
    pub data: &'a InstData,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;

    fn bid(i: usize) -> BlockId {
        BlockId::from_index(i)
    }

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Xor.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(BinOp::FMul.is_commutative());
        assert!(!BinOp::FDiv.is_commutative());
    }

    #[test]
    fn icmp_swapped_is_involutive() {
        for &p in ICmpPred::all() {
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(InstKind::Br { dest: bid(0) }.is_terminator());
        assert!(InstKind::Ret { value: None }.is_terminator());
        assert!(InstKind::Unreachable.is_terminator());
        assert!(InstKind::Invoke {
            callee: "f".into(),
            args: vec![],
            normal: bid(0),
            unwind: bid(1)
        }
        .is_terminator());
        assert!(!InstKind::Load { ptr: Value::Arg(0) }.is_terminator());
        assert!(!InstKind::Phi { incomings: vec![] }.is_terminator());
    }

    #[test]
    fn operand_iteration_and_replacement() {
        let mut k = InstKind::Select {
            cond: Value::Arg(0),
            if_true: Value::Arg(1),
            if_false: Value::Arg(1),
        };
        assert_eq!(k.operands().len(), 3);
        let n = k.replace_value(Value::Arg(1), Value::i32(5));
        assert_eq!(n, 2);
        assert_eq!(
            k.operands(),
            vec![Value::Arg(0), Value::i32(5), Value::i32(5)]
        );
    }

    #[test]
    fn successors_of_terminators() {
        let sw = InstKind::Switch {
            value: Value::Arg(0),
            default: bid(3),
            cases: vec![(1, bid(1)), (2, bid(2))],
        };
        assert_eq!(sw.successors(), vec![bid(3), bid(1), bid(2)]);
        let br = InstKind::CondBr {
            cond: Value::bool(true),
            if_true: bid(1),
            if_false: bid(2),
        };
        assert_eq!(br.successors(), vec![bid(1), bid(2)]);
        assert!(InstKind::Ret { value: None }.successors().is_empty());
    }

    #[test]
    fn opcode_classes_are_distinct_for_distinct_opcodes() {
        let kinds = vec![
            InstKind::ICmp {
                pred: ICmpPred::Eq,
                lhs: Value::Arg(0),
                rhs: Value::Arg(1),
            },
            InstKind::Select {
                cond: Value::Arg(0),
                if_true: Value::Arg(1),
                if_false: Value::Arg(2),
            },
            InstKind::Call {
                callee: "f".into(),
                args: vec![],
            },
            InstKind::LandingPad,
            InstKind::Phi { incomings: vec![] },
            InstKind::Alloca { ty: Type::I32 },
            InstKind::Load { ptr: Value::Arg(0) },
            InstKind::Store {
                value: Value::Arg(0),
                ptr: Value::Arg(1),
            },
            InstKind::Unreachable,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in &kinds {
            assert!(k.opcode_class() < InstKind::NUM_OPCODE_CLASSES);
            assert!(seen.insert(k.opcode_class()), "duplicate class for {k:?}");
        }
    }

    #[test]
    fn side_effects() {
        assert!(InstKind::Store {
            value: Value::Arg(0),
            ptr: Value::Arg(1)
        }
        .has_side_effects());
        assert!(InstKind::Call {
            callee: "f".into(),
            args: vec![]
        }
        .has_side_effects());
        assert!(!InstKind::Binary {
            op: BinOp::Add,
            lhs: Value::Arg(0),
            rhs: Value::Arg(1)
        }
        .has_side_effects());
        assert!(!InstKind::Load { ptr: Value::Arg(0) }.has_side_effects());
    }
}
