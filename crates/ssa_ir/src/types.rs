//! The (deliberately small) type system of the IR.
//!
//! The merging algorithms from the paper only require structural type
//! equality — two instructions are mergeable only if their result types and
//! operand types match — so a compact first-order type system is sufficient.

use std::fmt;

/// A first-order IR type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Type {
    /// No value (function return type of procedures, result of stores, ...).
    Void,
    /// An integer with the given bit width (1, 8, 16, 32 or 64).
    Int(u16),
    /// A 64-bit IEEE-754 floating point number.
    Float,
    /// An opaque pointer (all pointers share one type, as in modern LLVM).
    Ptr,
}

impl Type {
    /// The 1-bit boolean type.
    pub const I1: Type = Type::Int(1);
    /// The 8-bit integer type.
    pub const I8: Type = Type::Int(8);
    /// The 16-bit integer type.
    pub const I16: Type = Type::Int(16);
    /// The 32-bit integer type.
    pub const I32: Type = Type::Int(32);
    /// The 64-bit integer type.
    pub const I64: Type = Type::Int(64);

    /// Returns `true` for integer types of any width.
    pub fn is_int(self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// Returns `true` for the boolean (`i1`) type.
    pub fn is_bool(self) -> bool {
        self == Type::I1
    }

    /// Returns `true` for the float type.
    pub fn is_float(self) -> bool {
        self == Type::Float
    }

    /// Returns `true` for the pointer type.
    pub fn is_ptr(self) -> bool {
        self == Type::Ptr
    }

    /// Returns `true` for the void type.
    pub fn is_void(self) -> bool {
        self == Type::Void
    }

    /// Returns `true` if values of this type can be produced by an instruction.
    pub fn is_first_class(self) -> bool {
        !self.is_void()
    }

    /// Bit width of an integer type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn bits(self) -> u16 {
        match self {
            Type::Int(b) => b,
            other => panic!("Type::bits called on non-integer type {other:?}"),
        }
    }

    /// The size of a value of this type in bytes, as used by `alloca` and the
    /// code-size model. Void has size zero.
    pub fn size_bytes(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Int(b) => u32::from(b.max(8)).div_ceil(8),
            Type::Float => 8,
            Type::Ptr => 8,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(b) => write!(f, "i{b}"),
            Type::Float => write!(f, "double"),
            Type::Ptr => write!(f, "ptr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_llvm_spelling() {
        assert_eq!(Type::I1.to_string(), "i1");
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::Float.to_string(), "double");
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn predicates() {
        assert!(Type::I1.is_bool());
        assert!(Type::I1.is_int());
        assert!(!Type::Ptr.is_int());
        assert!(Type::Float.is_float());
        assert!(Type::Void.is_void());
        assert!(!Type::Void.is_first_class());
        assert!(Type::Ptr.is_first_class());
    }

    #[test]
    fn sizes() {
        assert_eq!(Type::I1.size_bytes(), 1);
        assert_eq!(Type::I8.size_bytes(), 1);
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::I64.size_bytes(), 8);
        assert_eq!(Type::Ptr.size_bytes(), 8);
        assert_eq!(Type::Void.size_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "non-integer")]
    fn bits_panics_on_ptr() {
        let _ = Type::Ptr.bits();
    }
}
