//! Modules: collections of function definitions and external declarations.

use crate::function::{Function, Linkage};
use crate::types::Type;
use std::collections::HashMap;

/// Signature of a declared (but not defined) function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncDecl {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret_ty: Type,
    /// Linkage of the symbol the declaration refers to. `External` (the
    /// default) is the ordinary case — the definition lives in another
    /// translation unit. `Internal` marks a module-local symbol expected to
    /// be defined within this module; the linker never resolves it across
    /// translation units.
    pub linkage: Linkage,
}

impl FuncDecl {
    /// Creates an external declaration (the common case).
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret_ty: Type) -> FuncDecl {
        FuncDecl {
            name: name.into(),
            params,
            ret_ty,
            linkage: Linkage::External,
        }
    }
}

/// A translation unit: function definitions plus external declarations.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The name of the module (e.g. the benchmark program it models).
    pub name: String,
    functions: Vec<Function>,
    declarations: Vec<FuncDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            declarations: Vec::new(),
        }
    }

    /// Adds a function definition. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if a definition with the same name already exists.
    pub fn add_function(&mut self, function: Function) -> usize {
        assert!(
            self.function(&function.name).is_none(),
            "duplicate function definition {}",
            function.name
        );
        self.functions.push(function);
        self.functions.len() - 1
    }

    /// Adds (or overwrites) an external declaration.
    pub fn declare(&mut self, decl: FuncDecl) {
        if let Some(existing) = self.declarations.iter_mut().find(|d| d.name == decl.name) {
            *existing = decl;
        } else {
            self.declarations.push(decl);
        }
    }

    /// All function definitions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to all function definitions.
    pub fn functions_mut(&mut self) -> &mut Vec<Function> {
        &mut self.functions
    }

    /// All external declarations.
    pub fn declarations(&self) -> &[FuncDecl] {
        &self.declarations
    }

    /// Removes the external declaration with the given name and returns it.
    pub fn remove_declaration(&mut self, name: &str) -> Option<FuncDecl> {
        let idx = self.declarations.iter().position(|d| d.name == name)?;
        Some(self.declarations.remove(idx))
    }

    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function definition by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Removes the definition with the given name and returns it.
    pub fn remove_function(&mut self, name: &str) -> Option<Function> {
        let idx = self.functions.iter().position(|f| f.name == name)?;
        Some(self.functions.remove(idx))
    }

    /// The signature (parameter types, return type) of a defined or declared
    /// function, if known.
    pub fn signature(&self, name: &str) -> Option<(Vec<Type>, Type)> {
        if let Some(f) = self.function(name) {
            return Some((f.params.clone(), f.ret_ty));
        }
        self.declarations
            .iter()
            .find(|d| d.name == name)
            .map(|d| (d.params.clone(), d.ret_ty))
    }

    /// The linkage of a defined or declared symbol, if known.
    pub fn symbol_linkage(&self, name: &str) -> Option<Linkage> {
        if let Some(f) = self.function(name) {
            return Some(f.linkage);
        }
        self.declarations
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.linkage)
    }

    /// Number of function definitions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Total number of IR instructions across all definitions. This is the
    /// module "size" used by Figure 5 and by the size-reduction figures before
    /// lowering to the byte-level code-size model.
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }

    /// Per-function instruction counts keyed by name.
    pub fn size_by_function(&self) -> HashMap<String, usize> {
        self.functions
            .iter()
            .map(|f| (f.name.clone(), f.num_insts()))
            .collect()
    }

    /// A stable, **order-independent** hash of the module's contents: one
    /// FNV-1a sub-hash per definition (name, linkage, structural key) and per
    /// declaration, folded together commutatively. Reordering functions or
    /// declarations therefore leaves the hash unchanged, so the incremental
    /// cross-module index cache survives function reordering; any content
    /// change (body, name, linkage, signature) still changes it. Function
    /// bodies are folded in through [`Function::structural_key`], so an
    /// unchanged module is hashed without re-printing any IR.
    pub fn content_hash(&self) -> u64 {
        fn fnv(parts: &[&[u8]]) -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for bytes in parts {
                for b in *bytes {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h ^= 0xff; // separator so field boundaries matter
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        // Commutative fold: wrapping addition of well-mixed sub-hashes is
        // order-insensitive but still sensitive to every element's content
        // (and to multiplicity, unlike plain xor).
        let mut h = 0u64;
        for f in &self.functions {
            h = h.wrapping_add(fnv(&[
                b"def",
                f.name.as_bytes(),
                format!("{}", f.linkage).as_bytes(),
                f.structural_key().as_bytes(),
            ]));
        }
        for d in &self.declarations {
            h = h.wrapping_add(fnv(&[
                b"decl",
                d.name.as_bytes(),
                format!("{}", d.linkage).as_bytes(),
                format!("{:?}->{:?}", d.params, d.ret_ty).as_bytes(),
            ]));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::InstKind;

    fn tiny(name: &str) -> Function {
        let mut f = Function::new(name, vec![Type::I32], Type::I32);
        let entry = f.add_block("entry");
        f.append_inst(
            entry,
            InstKind::Ret {
                value: Some(crate::Value::Arg(0)),
            },
            Type::Void,
        );
        f
    }

    #[test]
    fn add_lookup_remove() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.add_function(tiny("b"));
        assert_eq!(m.num_functions(), 2);
        assert!(m.function("a").is_some());
        assert!(m.function("c").is_none());
        assert!(m.remove_function("a").is_some());
        assert_eq!(m.num_functions(), 1);
        assert!(m.function("a").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate function definition")]
    fn duplicate_definition_panics() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.add_function(tiny("a"));
    }

    #[test]
    fn signatures_cover_definitions_and_declarations() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.declare(FuncDecl::new("ext", vec![Type::Ptr], Type::Void));
        assert_eq!(m.signature("a"), Some((vec![Type::I32], Type::I32)));
        assert_eq!(m.signature("ext"), Some((vec![Type::Ptr], Type::Void)));
        assert_eq!(m.signature("missing"), None);
    }

    #[test]
    fn content_hash_is_order_independent() {
        let build = |order: &[&str]| {
            let mut m = Module::new("m");
            for name in order {
                m.add_function(tiny(name));
            }
            m.declare(FuncDecl::new("ext1", vec![Type::I32], Type::I32));
            m.declare(FuncDecl::new("ext2", vec![Type::Ptr], Type::Void));
            m
        };
        let forward = build(&["a", "b", "c"]);
        let mut reversed = build(&["c", "b", "a"]);
        reversed.declarations.reverse();
        assert_eq!(
            forward.content_hash(),
            reversed.content_hash(),
            "function/declaration reordering must not change the hash"
        );
        // Content changes still do: a renamed function, a changed linkage,
        // and a changed declaration all produce different hashes.
        let mut renamed = build(&["a", "b", "d"]);
        assert_ne!(forward.content_hash(), renamed.content_hash());
        renamed.function_mut("d").unwrap().set_name("c");
        assert_eq!(forward.content_hash(), renamed.content_hash());
        let mut internal = build(&["a", "b", "c"]);
        internal
            .function_mut("b")
            .unwrap()
            .set_linkage(Linkage::Internal);
        assert_ne!(forward.content_hash(), internal.content_hash());
        let mut redeclared = build(&["a", "b", "c"]);
        redeclared.declare(FuncDecl::new("ext1", vec![Type::I64], Type::I32));
        assert_ne!(forward.content_hash(), redeclared.content_hash());
        // Duplicated content changes the hash too (multiplicity-sensitive).
        let mut doubled = build(&["a", "b", "c"]);
        doubled.declare(FuncDecl::new("ext3", vec![], Type::Void));
        assert_ne!(forward.content_hash(), doubled.content_hash());
    }

    #[test]
    fn sizes() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.add_function(tiny("b"));
        assert_eq!(m.total_insts(), 2);
        assert_eq!(m.size_by_function()["a"], 1);
    }
}
