//! Modules: collections of function definitions and external declarations.

use crate::function::Function;
use crate::types::Type;
use std::collections::HashMap;

/// Signature of an external (declared but not defined) function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncDecl {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret_ty: Type,
}

/// A translation unit: function definitions plus external declarations.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The name of the module (e.g. the benchmark program it models).
    pub name: String,
    functions: Vec<Function>,
    declarations: Vec<FuncDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            declarations: Vec::new(),
        }
    }

    /// Adds a function definition. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if a definition with the same name already exists.
    pub fn add_function(&mut self, function: Function) -> usize {
        assert!(
            self.function(&function.name).is_none(),
            "duplicate function definition {}",
            function.name
        );
        self.functions.push(function);
        self.functions.len() - 1
    }

    /// Adds (or overwrites) an external declaration.
    pub fn declare(&mut self, decl: FuncDecl) {
        if let Some(existing) = self.declarations.iter_mut().find(|d| d.name == decl.name) {
            *existing = decl;
        } else {
            self.declarations.push(decl);
        }
    }

    /// All function definitions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to all function definitions.
    pub fn functions_mut(&mut self) -> &mut Vec<Function> {
        &mut self.functions
    }

    /// All external declarations.
    pub fn declarations(&self) -> &[FuncDecl] {
        &self.declarations
    }

    /// Removes the external declaration with the given name and returns it.
    pub fn remove_declaration(&mut self, name: &str) -> Option<FuncDecl> {
        let idx = self.declarations.iter().position(|d| d.name == name)?;
        Some(self.declarations.remove(idx))
    }

    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function definition by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Removes the definition with the given name and returns it.
    pub fn remove_function(&mut self, name: &str) -> Option<Function> {
        let idx = self.functions.iter().position(|f| f.name == name)?;
        Some(self.functions.remove(idx))
    }

    /// The signature (parameter types, return type) of a defined or declared
    /// function, if known.
    pub fn signature(&self, name: &str) -> Option<(Vec<Type>, Type)> {
        if let Some(f) = self.function(name) {
            return Some((f.params.clone(), f.ret_ty));
        }
        self.declarations
            .iter()
            .find(|d| d.name == name)
            .map(|d| (d.params.clone(), d.ret_ty))
    }

    /// Number of function definitions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Total number of IR instructions across all definitions. This is the
    /// module "size" used by Figure 5 and by the size-reduction figures before
    /// lowering to the byte-level code-size model.
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }

    /// Per-function instruction counts keyed by name.
    pub fn size_by_function(&self) -> HashMap<String, usize> {
        self.functions
            .iter()
            .map(|f| (f.name.clone(), f.num_insts()))
            .collect()
    }

    /// A stable hash of the module's contents (definitions in order — name,
    /// linkage, structural key — plus declarations), used by the incremental
    /// cross-module index to skip re-summarizing unchanged modules. Function
    /// bodies are folded in through [`Function::structural_key`], so an
    /// unchanged module is hashed without re-printing any IR.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= 0xff; // separator so field boundaries matter
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for f in &self.functions {
            eat(f.name.as_bytes());
            eat(format!("{}", f.linkage).as_bytes());
            eat(f.structural_key().as_bytes());
        }
        for d in &self.declarations {
            eat(d.name.as_bytes());
            eat(format!("{:?}->{:?}", d.params, d.ret_ty).as_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::InstKind;

    fn tiny(name: &str) -> Function {
        let mut f = Function::new(name, vec![Type::I32], Type::I32);
        let entry = f.add_block("entry");
        f.append_inst(
            entry,
            InstKind::Ret {
                value: Some(crate::Value::Arg(0)),
            },
            Type::Void,
        );
        f
    }

    #[test]
    fn add_lookup_remove() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.add_function(tiny("b"));
        assert_eq!(m.num_functions(), 2);
        assert!(m.function("a").is_some());
        assert!(m.function("c").is_none());
        assert!(m.remove_function("a").is_some());
        assert_eq!(m.num_functions(), 1);
        assert!(m.function("a").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate function definition")]
    fn duplicate_definition_panics() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.add_function(tiny("a"));
    }

    #[test]
    fn signatures_cover_definitions_and_declarations() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.declare(FuncDecl {
            name: "ext".into(),
            params: vec![Type::Ptr],
            ret_ty: Type::Void,
        });
        assert_eq!(m.signature("a"), Some((vec![Type::I32], Type::I32)));
        assert_eq!(m.signature("ext"), Some((vec![Type::Ptr], Type::Void)));
        assert_eq!(m.signature("missing"), None);
    }

    #[test]
    fn sizes() {
        let mut m = Module::new("m");
        m.add_function(tiny("a"));
        m.add_function(tiny("b"));
        assert_eq!(m.total_insts(), 2);
        assert_eq!(m.size_by_function()["a"], 1);
    }
}
