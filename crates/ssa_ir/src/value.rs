//! SSA values: constants, function arguments and instruction results.

use crate::ids::InstId;
use crate::types::Type;
use std::fmt;

/// A compile-time constant.
///
/// Floats are stored as raw bits so the type can implement `Eq` and `Hash`,
/// which the merging pass relies on when comparing operands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Constant {
    /// An integer constant of the given bit width.
    Int { bits: u16, value: i64 },
    /// A 64-bit float constant (stored as its IEEE-754 bit pattern).
    Float(u64),
    /// The undefined value of a given type. Reading it is allowed but yields
    /// an unspecified value; SalSSA uses it for phi inputs that can never be
    /// taken when executing a given function identifier.
    Undef(Type),
    /// The null pointer.
    Null,
}

impl Constant {
    /// Boolean constant (`i1`).
    pub fn bool(value: bool) -> Constant {
        Constant::Int {
            bits: 1,
            value: i64::from(value),
        }
    }

    /// 32-bit integer constant.
    pub fn i32(value: i32) -> Constant {
        Constant::Int {
            bits: 32,
            value: i64::from(value),
        }
    }

    /// 64-bit integer constant.
    pub fn i64(value: i64) -> Constant {
        Constant::Int { bits: 64, value }
    }

    /// Float constant from an `f64`.
    pub fn float(value: f64) -> Constant {
        Constant::Float(value.to_bits())
    }

    /// The type of the constant.
    pub fn ty(self) -> Type {
        match self {
            Constant::Int { bits, .. } => Type::Int(bits),
            Constant::Float(_) => Type::Float,
            Constant::Undef(ty) => ty,
            Constant::Null => Type::Ptr,
        }
    }

    /// Returns the integer payload if this is an integer constant.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Constant::Int { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Returns the float payload if this is a float constant.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Constant::Float(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// Returns `true` for `undef` of any type.
    pub fn is_undef(self) -> bool {
        matches!(self, Constant::Undef(_))
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int { value, .. } => write!(f, "{value}"),
            Constant::Float(bits) => write!(f, "{:e}", f64::from_bits(*bits)),
            Constant::Undef(_) => write!(f, "undef"),
            Constant::Null => write!(f, "null"),
        }
    }
}

/// An SSA value: the result of an instruction, a function argument, or a
/// constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// The result of the instruction with the given id.
    Inst(InstId),
    /// The `index`-th formal parameter of the enclosing function.
    Arg(u32),
    /// A constant.
    Const(Constant),
}

impl Value {
    /// Boolean constant value.
    pub fn bool(value: bool) -> Value {
        Value::Const(Constant::bool(value))
    }

    /// 32-bit integer constant value.
    pub fn i32(value: i32) -> Value {
        Value::Const(Constant::i32(value))
    }

    /// 64-bit integer constant value.
    pub fn i64(value: i64) -> Value {
        Value::Const(Constant::i64(value))
    }

    /// Float constant value.
    pub fn float(value: f64) -> Value {
        Value::Const(Constant::float(value))
    }

    /// The undefined value of the given type.
    pub fn undef(ty: Type) -> Value {
        Value::Const(Constant::Undef(ty))
    }

    /// Returns the instruction id when the value is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the argument index when the value is a formal parameter.
    pub fn as_arg(self) -> Option<u32> {
        match self {
            Value::Arg(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the constant when the value is a constant.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Returns `true` when the value is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Returns `true` when the value is `undef`.
    pub fn is_undef(self) -> bool {
        matches!(self, Value::Const(Constant::Undef(_)))
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Value {
        Value::Const(c)
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Value {
        Value::Inst(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;

    #[test]
    fn constant_types() {
        assert_eq!(Constant::bool(true).ty(), Type::I1);
        assert_eq!(Constant::i32(7).ty(), Type::I32);
        assert_eq!(Constant::i64(7).ty(), Type::I64);
        assert_eq!(Constant::float(1.5).ty(), Type::Float);
        assert_eq!(Constant::Null.ty(), Type::Ptr);
        assert_eq!(Constant::Undef(Type::I32).ty(), Type::I32);
    }

    #[test]
    fn value_accessors() {
        let v = Value::i32(3);
        assert!(v.is_const());
        assert_eq!(v.as_const().unwrap().as_int(), Some(3));
        assert_eq!(v.as_inst(), None);
        let a = Value::Arg(2);
        assert_eq!(a.as_arg(), Some(2));
        let i = Value::Inst(InstId::from_index(5));
        assert_eq!(i.as_inst(), Some(InstId::from_index(5)));
        assert!(Value::undef(Type::Ptr).is_undef());
    }

    #[test]
    fn float_constants_are_hashable_and_eq() {
        assert_eq!(Constant::float(2.5), Constant::float(2.5));
        assert_ne!(Constant::float(2.5), Constant::float(-2.5));
        assert_eq!(Constant::float(2.5).as_float(), Some(2.5));
    }

    #[test]
    fn display() {
        assert_eq!(Constant::i32(-4).to_string(), "-4");
        assert_eq!(Constant::Undef(Type::I8).to_string(), "undef");
        assert_eq!(Constant::Null.to_string(), "null");
    }
}
