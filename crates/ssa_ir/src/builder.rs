//! A convenience builder for constructing functions programmatically.
//!
//! The builder keeps a current insertion block and offers one method per
//! instruction kind, returning the produced [`Value`]. It is used pervasively
//! by the test suites, the examples and the synthetic workload generator.

use crate::function::Function;
use crate::ids::{BlockId, InstId};
use crate::instruction::{BinOp, CastKind, ICmpPred, InstKind};
use crate::types::Type;
use crate::value::Value;

/// Builds instructions into a [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    function: Function,
    current: Option<BlockId>,
    name_counter: usize,
}

impl FunctionBuilder {
    /// Starts building a function with the given signature.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret_ty: Type) -> FunctionBuilder {
        FunctionBuilder {
            function: Function::new(name, params, ret_ty),
            current: None,
            name_counter: 0,
        }
    }

    /// Wraps an existing function so more code can be appended to it.
    pub fn from_function(function: Function) -> FunctionBuilder {
        FunctionBuilder {
            function,
            current: None,
            name_counter: 0,
        }
    }

    /// Finishes building and returns the function.
    pub fn finish(self) -> Function {
        self.function
    }

    /// Immutable access to the function under construction.
    pub fn function(&self) -> &Function {
        &self.function
    }

    /// Mutable access to the function under construction.
    pub fn function_mut(&mut self) -> &mut Function {
        &mut self.function
    }

    /// Creates a new block and returns its id (does not change the insertion
    /// point).
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        self.function.add_block(name)
    }

    /// Sets the insertion point to the end of `block`.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        self.current = Some(block);
        self
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no insertion point has been set.
    pub fn current_block(&self) -> BlockId {
        self.current.expect("no insertion block set")
    }

    /// The values of the formal parameters.
    pub fn args(&self) -> Vec<Value> {
        self.function.arg_values()
    }

    fn emit(&mut self, kind: InstKind, ty: Type) -> InstId {
        let block = self.current_block();
        let id = self.function.append_inst(block, kind, ty);
        if ty.is_first_class() {
            self.name_counter += 1;
            self.function
                .set_inst_name(id, format!("v{}", self.name_counter));
        }
        id
    }

    /// Emits a binary operation.
    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        let ty = self.function.value_type(lhs);
        Value::Inst(self.emit(InstKind::Binary { op, lhs, rhs }, ty))
    }

    /// Emits an integer comparison.
    pub fn icmp(&mut self, pred: ICmpPred, lhs: Value, rhs: Value) -> Value {
        Value::Inst(self.emit(InstKind::ICmp { pred, lhs, rhs }, Type::I1))
    }

    /// Emits a select.
    pub fn select(&mut self, cond: Value, if_true: Value, if_false: Value) -> Value {
        let ty = self.function.value_type(if_true);
        Value::Inst(self.emit(
            InstKind::Select {
                cond,
                if_true,
                if_false,
            },
            ty,
        ))
    }

    /// Emits a call to `callee` returning a value of type `ret_ty`.
    pub fn call(&mut self, callee: impl Into<String>, args: Vec<Value>, ret_ty: Type) -> Value {
        let id = self.emit(
            InstKind::Call {
                callee: callee.into(),
                args,
            },
            ret_ty,
        );
        Value::Inst(id)
    }

    /// Emits an invoke terminator.
    pub fn invoke(
        &mut self,
        callee: impl Into<String>,
        args: Vec<Value>,
        ret_ty: Type,
        normal: BlockId,
        unwind: BlockId,
    ) -> Value {
        let id = self.emit(
            InstKind::Invoke {
                callee: callee.into(),
                args,
                normal,
                unwind,
            },
            ret_ty,
        );
        Value::Inst(id)
    }

    /// Emits a landing pad (must be the first non-phi instruction of an unwind
    /// destination).
    pub fn landing_pad(&mut self) -> Value {
        Value::Inst(self.emit(InstKind::LandingPad, Type::Ptr))
    }

    /// Emits a resume terminator.
    pub fn resume(&mut self, value: Value) {
        self.emit(InstKind::Resume { value }, Type::Void);
    }

    /// Emits a phi-node with the given incoming `(value, block)` pairs.
    pub fn phi(&mut self, ty: Type, incomings: Vec<(Value, BlockId)>) -> Value {
        Value::Inst(self.emit(InstKind::Phi { incomings }, ty))
    }

    /// Emits an alloca for a slot of type `ty`.
    pub fn alloca(&mut self, ty: Type) -> Value {
        Value::Inst(self.emit(InstKind::Alloca { ty }, Type::Ptr))
    }

    /// Emits a load of type `ty` through `ptr`.
    pub fn load(&mut self, ptr: Value, ty: Type) -> Value {
        Value::Inst(self.emit(InstKind::Load { ptr }, ty))
    }

    /// Emits a store of `value` through `ptr`.
    pub fn store(&mut self, value: Value, ptr: Value) {
        self.emit(InstKind::Store { value, ptr }, Type::Void);
    }

    /// Emits pointer arithmetic (`base + index * stride`).
    pub fn gep(&mut self, base: Value, index: Value, stride: u32) -> Value {
        Value::Inst(self.emit(
            InstKind::Gep {
                base,
                index,
                stride,
            },
            Type::Ptr,
        ))
    }

    /// Emits a cast to `to_ty`.
    pub fn cast(&mut self, kind: CastKind, value: Value, to_ty: Type) -> Value {
        Value::Inst(self.emit(InstKind::Cast { kind, value }, to_ty))
    }

    /// Emits an unconditional branch.
    pub fn br(&mut self, dest: BlockId) {
        self.emit(InstKind::Br { dest }, Type::Void);
    }

    /// Emits a conditional branch.
    pub fn cond_br(&mut self, cond: Value, if_true: BlockId, if_false: BlockId) {
        self.emit(
            InstKind::CondBr {
                cond,
                if_true,
                if_false,
            },
            Type::Void,
        );
    }

    /// Emits a switch.
    pub fn switch(&mut self, value: Value, default: BlockId, cases: Vec<(i64, BlockId)>) {
        self.emit(
            InstKind::Switch {
                value,
                default,
                cases,
            },
            Type::Void,
        );
    }

    /// Emits a return of `value`.
    pub fn ret(&mut self, value: Option<Value>) {
        self.emit(InstKind::Ret { value }, Type::Void);
    }

    /// Emits an unreachable terminator.
    pub fn unreachable(&mut self) {
        self.emit(InstKind::Unreachable, Type::Void);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_diamond() {
        // A classic diamond: entry -> (then | else) -> join, with a phi.
        let mut b = FunctionBuilder::new("diamond", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let then_bb = b.create_block("then");
        let else_bb = b.create_block("else");
        let join = b.create_block("join");

        b.switch_to(entry);
        let arg = b.args()[0];
        let cond = b.icmp(ICmpPred::Sgt, arg, Value::i32(0));
        b.cond_br(cond, then_bb, else_bb);

        b.switch_to(then_bb);
        let doubled = b.binary(BinOp::Add, arg, arg);
        b.br(join);

        b.switch_to(else_bb);
        let negated = b.binary(BinOp::Sub, Value::i32(0), arg);
        b.br(join);

        b.switch_to(join);
        let merged = b.phi(Type::I32, vec![(doubled, then_bb), (negated, else_bb)]);
        b.ret(Some(merged));

        let f = b.finish();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_insts(), 8);
        assert_eq!(f.successors(entry), vec![then_bb, else_bb]);
        assert_eq!(f.block(join).phis.len(), 1);
    }

    #[test]
    fn builder_names_values() {
        let mut b = FunctionBuilder::new("named", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        b.switch_to(entry);
        let v = b.binary(BinOp::Mul, Value::Arg(0), Value::i32(3));
        b.ret(Some(v));
        let f = b.finish();
        let id = v.as_inst().unwrap();
        assert!(f.inst(id).name.is_some());
    }

    #[test]
    #[should_panic(expected = "no insertion block")]
    fn emitting_without_block_panics() {
        let mut b = FunctionBuilder::new("broken", vec![], Type::Void);
        b.ret(None);
    }
}
