//! Parser for the textual IR produced by [`crate::printer`].
//!
//! The grammar is a compact LLVM-like syntax; see the crate-level docs for an
//! example. Parsing is staged:
//!
//! 1. **lex** — the text becomes a token stream with per-token line numbers
//!    ([`Lexer`]); in lenient mode lexical errors are recorded and skipped
//!    instead of aborting,
//! 2. **structure** — the token stream is partitioned into top-level units
//!    (`define` bodies, `declare`s, and stray-token runs) by brace depth
//!    ([`segment_tokens`]), so one broken unit cannot desynchronize its
//!    neighbors,
//! 3. **parse + lower** — each unit independently becomes an AST and then a
//!    [`Function`] with full forward-reference resolution (phi nodes and
//!    branches may refer to values and labels defined later).
//!
//! [`parse_module`] is the strict entry point: the first error anywhere
//! aborts. [`parse_module_recovering`] degrades gracefully instead — a unit
//! that fails any stage is skipped with a [`SkippedFunction`] record carrying
//! function/line provenance while every healthy unit still loads.

use crate::function::{Function, Linkage};
use crate::ids::{BlockId, InstId};
use crate::instruction::{BinOp, CastKind, ICmpPred, InstKind};
use crate::module::{FuncDecl, Module};
use crate::types::Type;
use crate::value::{Constant, Value};
use std::collections::HashMap;
use std::fmt;

/// Error produced when parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line where the problem was detected.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// A top-level unit that failed to parse and was dropped by
/// [`parse_module_recovering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedFunction {
    /// `@name` of the unit when one was seen before the failure (empty for
    /// anonymous garbage or lexical noise between units).
    pub name: String,
    /// 1-based line of the failure (the unit's first line when the
    /// underlying error carries no position).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

/// Result of [`parse_module_recovering`]: everything that parsed plus a
/// record of everything that did not.
#[derive(Debug, Clone)]
pub struct RecoveredModule {
    /// The module assembled from all units that parsed and lowered cleanly.
    pub module: Module,
    /// One entry per dropped unit, ordered by line.
    pub skipped: Vec<SkippedFunction>,
}

impl RecoveredModule {
    /// True when at least one unit was dropped.
    pub fn degraded(&self) -> bool {
        !self.skipped.is_empty()
    }
}

/// Parses a whole module (declarations and definitions), aborting on the
/// first error at any stage.
pub fn parse_module(text: &str) -> Result<Module> {
    let (tokens, mut lex_errors) = Lexer::new(text).tokenize();
    if !lex_errors.is_empty() {
        return Err(lex_errors.remove(0));
    }
    let mut module = Module::new("parsed");
    for segment in segment_tokens(tokens) {
        parse_segment(&mut module, segment)?;
    }
    Ok(module)
}

/// Parses a whole module, skipping broken units instead of aborting.
///
/// This entry point is infallible. Lexical errors poison only the unit whose
/// line range contains them; a unit that fails to lex, parse, or lower is
/// recorded in [`RecoveredModule::skipped`] with name/line provenance while
/// every healthy unit still loads. Duplicate definitions keep the first copy.
pub fn parse_module_recovering(text: &str) -> RecoveredModule {
    let (tokens, lex_errors) = Lexer::new(text).tokenize();
    let mut module = Module::new("parsed");
    let mut skipped = Vec::new();
    let mut lex_used = vec![false; lex_errors.len()];
    for segment in segment_tokens(tokens) {
        let provenance = segment.name.clone().unwrap_or_default();
        // A lexical error inside this unit's line range makes its token
        // stream untrustworthy: drop the whole unit, reporting the first
        // error and consuming the rest.
        let mut poisoned_by: Option<&ParseError> = None;
        for (i, e) in lex_errors.iter().enumerate() {
            if !lex_used[i] && e.line >= segment.start_line && e.line <= segment.end_line {
                lex_used[i] = true;
                poisoned_by.get_or_insert(e);
            }
        }
        if let Some(e) = poisoned_by {
            skipped.push(SkippedFunction {
                name: provenance,
                line: e.line,
                message: e.message.clone(),
            });
            continue;
        }
        let start_line = segment.start_line;
        match segment.kind {
            SegmentKind::Garbage => {
                let (line, message) = match segment.tokens.first() {
                    Some(t) => (
                        t.line,
                        format!("expected 'define' or 'declare', found {:?}", t.tok),
                    ),
                    None => (start_line, "expected 'define' or 'declare'".to_string()),
                };
                skipped.push(SkippedFunction {
                    name: provenance,
                    line,
                    message,
                });
            }
            SegmentKind::Declare => {
                let mut parser = Parser::over(segment.tokens);
                match parser.declaration() {
                    Ok(decl) => {
                        module.declare(decl);
                        // Stray tokens between this declaration and the next
                        // unit are dropped on their own, keeping the decl.
                        if let Err(e) = parser.expect_done() {
                            skipped.push(skip_at(String::new(), start_line, e));
                        }
                    }
                    Err(e) => skipped.push(skip_at(provenance, start_line, e)),
                }
            }
            SegmentKind::Define => {
                if telemetry::faultinject::should_fail("parse.function") {
                    skipped.push(SkippedFunction {
                        name: provenance,
                        line: start_line,
                        message: "fault injected at parse.function".into(),
                    });
                    continue;
                }
                let mut parser = Parser::over(segment.tokens);
                let parsed = parser.function().and_then(|ast| {
                    parser.expect_done()?;
                    lower_function(&ast)
                });
                match parsed {
                    Ok(function) => {
                        if module.function(&function.name).is_some() {
                            skipped.push(SkippedFunction {
                                name: function.name.clone(),
                                line: start_line,
                                message: format!(
                                    "duplicate function definition @{}",
                                    function.name
                                ),
                            });
                        } else {
                            module.add_function(function);
                        }
                    }
                    Err(e) => skipped.push(skip_at(provenance, start_line, e)),
                }
            }
        }
    }
    // Lexical noise between units: one record per line, not per character.
    let mut last_noise_line = None;
    for (i, e) in lex_errors.iter().enumerate() {
        if !lex_used[i] && last_noise_line != Some(e.line) {
            last_noise_line = Some(e.line);
            skipped.push(SkippedFunction {
                name: String::new(),
                line: e.line,
                message: e.message.clone(),
            });
        }
    }
    skipped.sort_by_key(|s| s.line);
    RecoveredModule { module, skipped }
}

fn skip_at(name: String, start_line: usize, e: ParseError) -> SkippedFunction {
    SkippedFunction {
        name,
        line: if e.line == 0 { start_line } else { e.line },
        message: e.message,
    }
}

/// Strict per-unit parse: any failure aborts the whole module.
fn parse_segment(module: &mut Module, segment: Segment) -> Result<()> {
    let start_line = segment.start_line;
    match segment.kind {
        SegmentKind::Garbage => {
            let (line, message) = match segment.tokens.first() {
                Some(t) => (
                    t.line,
                    format!("expected 'define' or 'declare', found {:?}", t.tok),
                ),
                None => (start_line, "expected 'define' or 'declare'".to_string()),
            };
            Err(ParseError { message, line })
        }
        SegmentKind::Declare => {
            let mut parser = Parser::over(segment.tokens);
            let decl = parser.declaration()?;
            parser.expect_done()?;
            module.declare(decl);
            Ok(())
        }
        SegmentKind::Define => {
            let mut parser = Parser::over(segment.tokens);
            let ast = parser.function()?;
            parser.expect_done()?;
            let function = lower_function(&ast)?;
            if module.function(&function.name).is_some() {
                return Err(ParseError {
                    message: format!("duplicate function definition @{}", function.name),
                    line: start_line,
                });
            }
            module.add_function(function);
            Ok(())
        }
    }
}

/// Parses a single function definition.
pub fn parse_function(text: &str) -> Result<Function> {
    let module = parse_module(text)?;
    module
        .functions()
        .first()
        .cloned()
        .ok_or_else(|| ParseError {
            message: "input contains no function definition".into(),
            line: 1,
        })
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),   // identifiers, keywords, type names
    Local(String),  // %name
    Global(String), // @name
    Int(i64),
    Float(f64),
    Punct(char), // ( ) { } [ ] , = :
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    tok: Tok,
    line: usize,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            chars: text.chars().peekable(),
            line: 1,
        }
    }

    /// Lenient scan: lexical errors are recorded and skipped, never fatal.
    /// Strict callers treat a non-empty error list as failure; the
    /// recovering path maps each error back to the unit containing it.
    fn tokenize(mut self) -> (Vec<Token>, Vec<ParseError>) {
        let mut out = Vec::new();
        let mut errors = Vec::new();
        while let Some(&c) = self.chars.peek() {
            match c {
                '\n' => {
                    self.line += 1;
                    self.chars.next();
                }
                c if c.is_whitespace() => {
                    self.chars.next();
                }
                ';' => {
                    // Comment until end of line.
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.chars.next();
                    }
                }
                '%' | '@' => {
                    let sigil = c;
                    self.chars.next();
                    let name = self.ident();
                    let tok = if sigil == '%' {
                        Tok::Local(name)
                    } else {
                        Tok::Global(name)
                    };
                    out.push(Token {
                        tok,
                        line: self.line,
                    });
                }
                '(' | ')' | '{' | '}' | '[' | ']' | ',' | '=' | ':' => {
                    self.chars.next();
                    out.push(Token {
                        tok: Tok::Punct(c),
                        line: self.line,
                    });
                }
                c if c.is_ascii_digit() || c == '-' || c == '+' => match self.number() {
                    Ok(token) => out.push(token),
                    Err(e) => errors.push(e),
                },
                c if c.is_alphabetic() || c == '_' || c == '.' => {
                    let word = self.ident();
                    out.push(Token {
                        tok: Tok::Word(word),
                        line: self.line,
                    });
                }
                other => {
                    errors.push(ParseError {
                        message: format!("unexpected character '{other}'"),
                        line: self.line,
                    });
                    self.chars.next();
                }
            }
        }
        (out, errors)
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
                s.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self) -> Result<Token> {
        let mut s = String::new();
        if let Some(sign) = self.chars.next_if(|c| matches!(c, '-' | '+')) {
            s.push(sign);
        }
        let mut is_float = false;
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.chars.next();
            } else if c == '.' || c == 'e' || c == 'E' {
                is_float = true;
                s.push(c);
                self.chars.next();
                if c == 'e' || c == 'E' {
                    if let Some(sign) = self.chars.next_if(|c| matches!(c, '-' | '+')) {
                        s.push(sign);
                    }
                }
            } else {
                break;
            }
        }
        let line = self.line;
        if is_float {
            s.parse::<f64>()
                .map(|v| Token {
                    tok: Tok::Float(v),
                    line,
                })
                .map_err(|_| ParseError {
                    message: format!("bad float literal '{s}'"),
                    line,
                })
        } else {
            s.parse::<i64>()
                .map(|v| Token {
                    tok: Tok::Int(v),
                    line,
                })
                .map_err(|_| ParseError {
                    message: format!("bad integer literal '{s}'"),
                    line,
                })
        }
    }
}

// ---------------------------------------------------------------------------
// Structure stage: top-level unit segmentation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegmentKind {
    Define,
    Declare,
    Garbage,
}

/// One top-level unit of the token stream: a `define` body, a `declare`
/// (plus any stray tokens up to the next unit), or a run of tokens that
/// belongs to no unit at all.
#[derive(Debug)]
struct Segment {
    kind: SegmentKind,
    tokens: Vec<Token>,
    start_line: usize,
    end_line: usize,
    /// First `@name` seen in the unit, for skip provenance.
    name: Option<String>,
}

impl Segment {
    fn new(kind: SegmentKind, token: Token) -> Self {
        let name = match &token.tok {
            Tok::Global(n) => Some(n.clone()),
            _ => None,
        };
        Segment {
            kind,
            start_line: token.line,
            end_line: token.line,
            name,
            tokens: vec![token],
        }
    }

    fn push(&mut self, token: Token) {
        if self.name.is_none() {
            if let Tok::Global(n) = &token.tok {
                self.name = Some(n.clone());
            }
        }
        self.end_line = self.end_line.max(token.line);
        self.tokens.push(token);
    }
}

/// Splits the token stream into independent top-level units so one broken
/// unit cannot desynchronize its neighbors. `define`/`declare` keywords
/// always open a new unit — even inside an unterminated body, since real
/// bodies never contain them they are reliable resynchronization points — and
/// a `define` unit otherwise ends with the `}` closing its body.
fn segment_tokens(tokens: Vec<Token>) -> Vec<Segment> {
    let mut segments: Vec<Segment> = Vec::new();
    let mut current: Option<Segment> = None;
    let mut depth = 0usize;
    for token in tokens {
        if let Tok::Word(w) = &token.tok {
            if w == "define" || w == "declare" {
                let kind = if w == "define" {
                    SegmentKind::Define
                } else {
                    SegmentKind::Declare
                };
                if let Some(segment) = current.take() {
                    segments.push(segment);
                }
                depth = 0;
                current = Some(Segment::new(kind, token));
                continue;
            }
        }
        match token.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => depth = depth.saturating_sub(1),
            _ => {}
        }
        let closes_define = depth == 0
            && token.tok == Tok::Punct('}')
            && matches!(&current, Some(s) if s.kind == SegmentKind::Define);
        match &mut current {
            Some(segment) => segment.push(token),
            None => current = Some(Segment::new(SegmentKind::Garbage, token)),
        }
        if closes_define {
            if let Some(segment) = current.take() {
                segments.push(segment);
            }
        }
    }
    if let Some(segment) = current.take() {
        segments.push(segment);
    }
    segments
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Operand {
    Local(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Undef,
    Null,
}

#[derive(Debug, Clone)]
struct TypedOperand {
    ty: Type,
    op: Operand,
}

#[derive(Debug, Clone)]
enum AstInst {
    Binary {
        op: BinOp,
        ty: Type,
        lhs: Operand,
        rhs: Operand,
    },
    ICmp {
        pred: ICmpPred,
        ty: Type,
        lhs: Operand,
        rhs: Operand,
    },
    Select {
        cond: TypedOperand,
        if_true: TypedOperand,
        if_false: TypedOperand,
    },
    Call {
        ret: Type,
        callee: String,
        args: Vec<TypedOperand>,
    },
    Invoke {
        ret: Type,
        callee: String,
        args: Vec<TypedOperand>,
        normal: String,
        unwind: String,
    },
    LandingPad,
    Resume {
        value: TypedOperand,
    },
    Phi {
        ty: Type,
        incomings: Vec<(Operand, String)>,
    },
    Alloca {
        ty: Type,
    },
    Load {
        ty: Type,
        ptr: TypedOperand,
    },
    Store {
        value: TypedOperand,
        ptr: TypedOperand,
    },
    Gep {
        base: TypedOperand,
        index: TypedOperand,
        stride: u32,
    },
    Cast {
        kind: CastKind,
        value: TypedOperand,
        to: Type,
    },
    Br {
        dest: String,
    },
    CondBr {
        cond: TypedOperand,
        if_true: String,
        if_false: String,
    },
    Switch {
        value: TypedOperand,
        default: String,
        cases: Vec<(i64, String)>,
    },
    Ret {
        value: Option<TypedOperand>,
    },
    Unreachable,
}

#[derive(Debug, Clone)]
struct AstStmt {
    result: Option<String>,
    inst: AstInst,
    line: usize,
}

#[derive(Debug, Clone)]
struct AstBlock {
    label: String,
    stmts: Vec<AstStmt>,
}

#[derive(Debug, Clone)]
struct AstFunction {
    name: String,
    ret: Type,
    linkage: Linkage,
    params: Vec<(Type, String)>,
    blocks: Vec<AstBlock>,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>, // reversed; next token is the last element
}

impl Parser {
    /// Builds a parser over one segment's tokens (in source order).
    fn over(mut tokens: Vec<Token>) -> Self {
        tokens.reverse(); // use as a stack: pop() yields the next token
        Parser { tokens }
    }

    /// Fails if the segment has trailing tokens after its unit parsed.
    fn expect_done(&mut self) -> Result<()> {
        match self.tokens.last() {
            None => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("expected 'define' or 'declare', found {:?}", t.tok),
                line: t.line,
            }),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.last().map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.tokens.last().map(|t| t.line).unwrap_or(0)
    }

    fn next(&mut self) -> Result<Token> {
        self.tokens.pop().ok_or(ParseError {
            message: "unexpected end of input".into(),
            line: 0,
        })
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        let t = self.next()?;
        if t.tok == Tok::Punct(c) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected '{c}', found {:?}", t.tok),
                line: t.line,
            })
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<()> {
        let t = self.next()?;
        if t.tok == Tok::Word(w.to_string()) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected '{w}', found {:?}", t.tok),
                line: t.line,
            })
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.tokens.pop();
            true
        } else {
            false
        }
    }

    fn word(&mut self) -> Result<String> {
        let t = self.next()?;
        match t.tok {
            Tok::Word(w) => Ok(w),
            other => Err(ParseError {
                message: format!("expected identifier, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn global(&mut self) -> Result<String> {
        let t = self.next()?;
        match t.tok {
            Tok::Global(name) => Ok(name),
            other => Err(ParseError {
                message: format!("expected @name, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn local(&mut self) -> Result<String> {
        let t = self.next()?;
        match t.tok {
            Tok::Local(name) => Ok(name),
            other => Err(ParseError {
                message: format!("expected %name, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn ty(&mut self) -> Result<Type> {
        let w = self.word()?;
        parse_type(&w).ok_or_else(|| ParseError {
            message: format!("unknown type '{w}'"),
            line: self.line(),
        })
    }

    fn label(&mut self) -> Result<String> {
        self.expect_word("label")?;
        self.local()
    }

    fn operand(&mut self) -> Result<Operand> {
        let t = self.next()?;
        match t.tok {
            Tok::Local(name) => Ok(Operand::Local(name)),
            Tok::Int(v) => Ok(Operand::Int(v)),
            Tok::Float(v) => Ok(Operand::Float(v)),
            Tok::Word(w) => match w.as_str() {
                "true" => Ok(Operand::Bool(true)),
                "false" => Ok(Operand::Bool(false)),
                "undef" => Ok(Operand::Undef),
                "null" => Ok(Operand::Null),
                other => Err(ParseError {
                    message: format!("expected operand, found '{other}'"),
                    line: t.line,
                }),
            },
            other => Err(ParseError {
                message: format!("expected operand, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn typed_operand(&mut self) -> Result<TypedOperand> {
        let ty = self.ty()?;
        let op = self.operand()?;
        Ok(TypedOperand { ty, op })
    }

    fn declaration(&mut self) -> Result<FuncDecl> {
        self.expect_word("declare")?;
        let linkage = self.linkage();
        let ret = self.ty()?;
        let name = self.global()?;
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.eat_punct(')') {
            loop {
                params.push(self.ty()?);
                // Optional parameter name in declarations.
                if matches!(self.peek(), Some(Tok::Local(_))) {
                    self.tokens.pop();
                }
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        Ok(FuncDecl {
            name,
            params,
            ret_ty: ret,
            linkage,
        })
    }

    /// Consumes an optional `internal`/`external` linkage keyword (shared by
    /// `define` and `declare`); absent means external.
    fn linkage(&mut self) -> Linkage {
        match self.peek() {
            Some(Tok::Word(w)) if w == "internal" => {
                self.tokens.pop();
                Linkage::Internal
            }
            Some(Tok::Word(w)) if w == "external" => {
                self.tokens.pop();
                Linkage::External
            }
            _ => Linkage::External,
        }
    }

    fn function(&mut self) -> Result<AstFunction> {
        self.expect_word("define")?;
        let linkage = self.linkage();
        let ret = self.ty()?;
        let name = self.global()?;
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.eat_punct(')') {
            loop {
                let ty = self.ty()?;
                let pname = self.local()?;
                params.push((ty, pname));
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct('{')?;

        let mut blocks: Vec<AstBlock> = Vec::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            // A block label: `name:`
            let label = self.word()?;
            self.expect_punct(':')?;
            let mut stmts = Vec::new();
            loop {
                match self.peek() {
                    Some(Tok::Punct('}')) => break,
                    // Next block label: Word followed by ':'
                    Some(Tok::Word(_)) if self.peek_is_label() => break,
                    None => return self.err("unterminated function body"),
                    _ => {
                        let stmt = self.statement()?;
                        stmts.push(stmt);
                    }
                }
            }
            blocks.push(AstBlock { label, stmts });
        }
        Ok(AstFunction {
            name,
            ret,
            linkage,
            params,
            blocks,
        })
    }

    /// Returns true when the next two tokens form a block label (`word ':'`).
    fn peek_is_label(&self) -> bool {
        let n = self.tokens.len();
        if n < 2 {
            return false;
        }
        matches!(self.tokens[n - 1].tok, Tok::Word(_)) && self.tokens[n - 2].tok == Tok::Punct(':')
    }

    fn statement(&mut self) -> Result<AstStmt> {
        let line = self.line();
        let mut result = None;
        if let Some(Tok::Local(_)) = self.peek() {
            result = Some(self.local()?);
            self.expect_punct('=')?;
        }
        let inst = self.instruction()?;
        Ok(AstStmt { result, inst, line })
    }

    fn call_args(&mut self) -> Result<Vec<TypedOperand>> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        if !self.eat_punct(')') {
            loop {
                args.push(self.typed_operand()?);
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        Ok(args)
    }

    fn instruction(&mut self) -> Result<AstInst> {
        let word = self.word()?;
        if let Some(op) = parse_binop(&word) {
            let ty = self.ty()?;
            let lhs = self.operand()?;
            self.expect_punct(',')?;
            let rhs = self.operand()?;
            return Ok(AstInst::Binary { op, ty, lhs, rhs });
        }
        if let Some(kind) = parse_cast(&word) {
            let value = self.typed_operand()?;
            self.expect_word("to")?;
            let to = self.ty()?;
            return Ok(AstInst::Cast { kind, value, to });
        }
        match word.as_str() {
            "icmp" => {
                let predw = self.word()?;
                let pred = parse_icmp(&predw).ok_or_else(|| ParseError {
                    message: format!("unknown icmp predicate '{predw}'"),
                    line: self.line(),
                })?;
                let ty = self.ty()?;
                let lhs = self.operand()?;
                self.expect_punct(',')?;
                let rhs = self.operand()?;
                Ok(AstInst::ICmp { pred, ty, lhs, rhs })
            }
            "select" => {
                let cond = self.typed_operand()?;
                self.expect_punct(',')?;
                let if_true = self.typed_operand()?;
                self.expect_punct(',')?;
                let if_false = self.typed_operand()?;
                Ok(AstInst::Select {
                    cond,
                    if_true,
                    if_false,
                })
            }
            "call" => {
                let ret = self.ty()?;
                let callee = self.global()?;
                let args = self.call_args()?;
                Ok(AstInst::Call { ret, callee, args })
            }
            "invoke" => {
                let ret = self.ty()?;
                let callee = self.global()?;
                let args = self.call_args()?;
                self.expect_word("to")?;
                let normal = self.label()?;
                self.expect_word("unwind")?;
                let unwind = self.label()?;
                Ok(AstInst::Invoke {
                    ret,
                    callee,
                    args,
                    normal,
                    unwind,
                })
            }
            "landingpad" => Ok(AstInst::LandingPad),
            "resume" => Ok(AstInst::Resume {
                value: self.typed_operand()?,
            }),
            "phi" => {
                let ty = self.ty()?;
                let mut incomings = Vec::new();
                loop {
                    self.expect_punct('[')?;
                    let value = self.operand()?;
                    self.expect_punct(',')?;
                    let block = self.local()?;
                    self.expect_punct(']')?;
                    incomings.push((value, block));
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                Ok(AstInst::Phi { ty, incomings })
            }
            "alloca" => Ok(AstInst::Alloca { ty: self.ty()? }),
            "load" => {
                let ty = self.ty()?;
                self.expect_punct(',')?;
                let ptr = self.typed_operand()?;
                Ok(AstInst::Load { ty, ptr })
            }
            "store" => {
                let value = self.typed_operand()?;
                self.expect_punct(',')?;
                let ptr = self.typed_operand()?;
                Ok(AstInst::Store { value, ptr })
            }
            "getelementptr" => {
                let base = self.typed_operand()?;
                self.expect_punct(',')?;
                let index = self.typed_operand()?;
                self.expect_punct(',')?;
                self.expect_word("stride")?;
                let stride = match self.next()?.tok {
                    Tok::Int(v) if v >= 0 => v as u32,
                    other => return self.err(format!("expected stride integer, found {other:?}")),
                };
                Ok(AstInst::Gep {
                    base,
                    index,
                    stride,
                })
            }
            "br" => {
                if let Some(Tok::Word(w)) = self.peek() {
                    if w == "label" {
                        let dest = self.label()?;
                        return Ok(AstInst::Br { dest });
                    }
                }
                let cond = self.typed_operand()?;
                self.expect_punct(',')?;
                let if_true = self.label()?;
                self.expect_punct(',')?;
                let if_false = self.label()?;
                Ok(AstInst::CondBr {
                    cond,
                    if_true,
                    if_false,
                })
            }
            "switch" => {
                let value = self.typed_operand()?;
                self.expect_punct(',')?;
                let default = self.label()?;
                self.expect_punct('[')?;
                let mut cases = Vec::new();
                if !self.eat_punct(']') {
                    loop {
                        let c = match self.next()?.tok {
                            Tok::Int(v) => v,
                            other => {
                                return self.err(format!("expected case value, found {other:?}"))
                            }
                        };
                        self.expect_punct(':')?;
                        let dest = self.label()?;
                        cases.push((c, dest));
                        if self.eat_punct(']') {
                            break;
                        }
                        self.expect_punct(',')?;
                    }
                }
                Ok(AstInst::Switch {
                    value,
                    default,
                    cases,
                })
            }
            "ret" => {
                if let Some(Tok::Word(w)) = self.peek() {
                    if w == "void" {
                        self.tokens.pop();
                        return Ok(AstInst::Ret { value: None });
                    }
                }
                Ok(AstInst::Ret {
                    value: Some(self.typed_operand()?),
                })
            }
            "unreachable" => Ok(AstInst::Unreachable),
            other => self.err(format!("unknown instruction '{other}'")),
        }
    }
}

fn parse_type(word: &str) -> Option<Type> {
    match word {
        "void" => Some(Type::Void),
        "double" => Some(Type::Float),
        "ptr" => Some(Type::Ptr),
        w if w.starts_with('i') => w[1..].parse::<u16>().ok().map(Type::Int),
        _ => None,
    }
}

fn parse_binop(word: &str) -> Option<BinOp> {
    BinOp::all()
        .iter()
        .copied()
        .find(|op| op.mnemonic() == word)
}

fn parse_icmp(word: &str) -> Option<ICmpPred> {
    ICmpPred::all()
        .iter()
        .copied()
        .find(|p| p.mnemonic() == word)
}

fn parse_cast(word: &str) -> Option<CastKind> {
    [
        CastKind::Trunc,
        CastKind::ZExt,
        CastKind::SExt,
        CastKind::Bitcast,
        CastKind::PtrToInt,
        CastKind::IntToPtr,
        CastKind::SIToFP,
        CastKind::FPToSI,
    ]
    .into_iter()
    .find(|k| k.mnemonic() == word)
}

// ---------------------------------------------------------------------------
// Lowering (AST -> Function)
// ---------------------------------------------------------------------------

struct Env {
    values: HashMap<String, Value>,
    blocks: HashMap<String, BlockId>,
}

impl Env {
    fn resolve(&self, op: &Operand, ty: Type, strict: bool, line: usize) -> Result<Value> {
        match op {
            Operand::Local(name) => match self.values.get(name) {
                Some(v) => Ok(*v),
                None if !strict => Ok(Value::undef(ty)),
                None => Err(ParseError {
                    message: format!("use of undefined value %{name}"),
                    line,
                }),
            },
            Operand::Int(v) => {
                let bits = if ty.is_int() { ty.bits() } else { 64 };
                Ok(Value::Const(Constant::Int { bits, value: *v }))
            }
            Operand::Float(v) => Ok(Value::float(*v)),
            Operand::Bool(b) => Ok(Value::bool(*b)),
            Operand::Undef => Ok(Value::undef(ty)),
            Operand::Null => Ok(Value::Const(Constant::Null)),
        }
    }

    fn block(&self, name: &str, line: usize) -> Result<BlockId> {
        self.blocks.get(name).copied().ok_or_else(|| ParseError {
            message: format!("reference to unknown label %{name}"),
            line,
        })
    }
}

fn lower_function(ast: &AstFunction) -> Result<Function> {
    let mut function = Function::new(
        ast.name.clone(),
        ast.params.iter().map(|(t, _)| *t).collect(),
        ast.ret,
    );
    function.linkage = ast.linkage;
    function.param_names = ast.params.iter().map(|(_, n)| n.clone()).collect();

    let mut env = Env {
        values: HashMap::new(),
        blocks: HashMap::new(),
    };
    for (i, (_, name)) in ast.params.iter().enumerate() {
        env.values.insert(name.clone(), Value::Arg(i as u32));
    }
    for block in &ast.blocks {
        let id = function.add_block(block.label.clone());
        if env.blocks.insert(block.label.clone(), id).is_some() {
            return Err(ParseError {
                message: format!("duplicate block label {}", block.label),
                line: 0,
            });
        }
    }

    // Phase 1: create instructions with lenient operand resolution, recording
    // result names as they become available.
    let mut created: Vec<(InstId, &AstStmt)> = Vec::new();
    for block in &ast.blocks {
        let block_id = env.blocks[&block.label];
        let mut terminated = false;
        for stmt in &block.stmts {
            // A second terminator (or any code after one) would trip
            // `append_inst`'s single-terminator invariant; report it as a
            // parse error so the recovering frontend can skip the function.
            if terminated {
                return Err(ParseError {
                    message: format!("instruction after terminator in block {}", block.label),
                    line: stmt.line,
                });
            }
            let (kind, ty) = build_kind(&stmt.inst, &env, false, stmt.line)?;
            terminated = kind.is_terminator();
            let id = function.append_inst(block_id, kind, ty);
            if let Some(name) = &stmt.result {
                if !ty.is_first_class() {
                    return Err(ParseError {
                        message: format!("instruction producing void cannot be named %{name}"),
                        line: stmt.line,
                    });
                }
                function.set_inst_name(id, name.clone());
                env.values.insert(name.clone(), Value::Inst(id));
            }
            created.push((id, stmt));
        }
    }

    // Phase 2: rebuild operands with strict resolution (forward references are
    // now known).
    for (id, stmt) in created {
        let (kind, _) = build_kind(&stmt.inst, &env, true, stmt.line)?;
        function.inst_mut(id).kind = kind;
    }
    Ok(function)
}

fn build_kind(inst: &AstInst, env: &Env, strict: bool, line: usize) -> Result<(InstKind, Type)> {
    let r = |op: &Operand, ty: Type| env.resolve(op, ty, strict, line);
    let rt = |t: &TypedOperand| env.resolve(&t.op, t.ty, strict, line);
    Ok(match inst {
        AstInst::Binary { op, ty, lhs, rhs } => (
            InstKind::Binary {
                op: *op,
                lhs: r(lhs, *ty)?,
                rhs: r(rhs, *ty)?,
            },
            *ty,
        ),
        AstInst::ICmp { pred, ty, lhs, rhs } => (
            InstKind::ICmp {
                pred: *pred,
                lhs: r(lhs, *ty)?,
                rhs: r(rhs, *ty)?,
            },
            Type::I1,
        ),
        AstInst::Select {
            cond,
            if_true,
            if_false,
        } => (
            InstKind::Select {
                cond: rt(cond)?,
                if_true: rt(if_true)?,
                if_false: rt(if_false)?,
            },
            if_true.ty,
        ),
        AstInst::Call { ret, callee, args } => (
            InstKind::Call {
                callee: callee.clone(),
                args: args.iter().map(rt).collect::<Result<_>>()?,
            },
            *ret,
        ),
        AstInst::Invoke {
            ret,
            callee,
            args,
            normal,
            unwind,
        } => (
            InstKind::Invoke {
                callee: callee.clone(),
                args: args.iter().map(rt).collect::<Result<_>>()?,
                normal: env.block(normal, line)?,
                unwind: env.block(unwind, line)?,
            },
            *ret,
        ),
        AstInst::LandingPad => (InstKind::LandingPad, Type::Ptr),
        AstInst::Resume { value } => (InstKind::Resume { value: rt(value)? }, Type::Void),
        AstInst::Phi { ty, incomings } => (
            InstKind::Phi {
                incomings: incomings
                    .iter()
                    .map(|(v, b)| Ok((r(v, *ty)?, env.block(b, line)?)))
                    .collect::<Result<_>>()?,
            },
            *ty,
        ),
        AstInst::Alloca { ty } => (InstKind::Alloca { ty: *ty }, Type::Ptr),
        AstInst::Load { ty, ptr } => (InstKind::Load { ptr: rt(ptr)? }, *ty),
        AstInst::Store { value, ptr } => (
            InstKind::Store {
                value: rt(value)?,
                ptr: rt(ptr)?,
            },
            Type::Void,
        ),
        AstInst::Gep {
            base,
            index,
            stride,
        } => (
            InstKind::Gep {
                base: rt(base)?,
                index: rt(index)?,
                stride: *stride,
            },
            Type::Ptr,
        ),
        AstInst::Cast { kind, value, to } => (
            InstKind::Cast {
                kind: *kind,
                value: rt(value)?,
            },
            *to,
        ),
        AstInst::Br { dest } => (
            InstKind::Br {
                dest: env.block(dest, line)?,
            },
            Type::Void,
        ),
        AstInst::CondBr {
            cond,
            if_true,
            if_false,
        } => (
            InstKind::CondBr {
                cond: rt(cond)?,
                if_true: env.block(if_true, line)?,
                if_false: env.block(if_false, line)?,
            },
            Type::Void,
        ),
        AstInst::Switch {
            value,
            default,
            cases,
        } => (
            InstKind::Switch {
                value: rt(value)?,
                default: env.block(default, line)?,
                cases: cases
                    .iter()
                    .map(|(c, b)| Ok((*c, env.block(b, line)?)))
                    .collect::<Result<_>>()?,
            },
            Type::Void,
        ),
        AstInst::Ret { value } => (
            InstKind::Ret {
                value: value.as_ref().map(rt).transpose()?,
            },
            Type::Void,
        ),
        AstInst::Unreachable => (InstKind::Unreachable, Type::Void),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_function, print_module};

    #[test]
    fn linkage_parses_and_round_trips() {
        let text =
            "define internal i32 @local(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n";
        let f = parse_function(text).unwrap();
        assert_eq!(f.linkage, Linkage::Internal);
        let printed = print_function(&f);
        assert!(printed.starts_with("define internal i32 @local"));
        assert_eq!(print_function(&parse_function(&printed).unwrap()), printed);
        // An explicit `external` keyword parses and prints as the default.
        let g =
            parse_function("define external i32 @ext(i32 %x) {\nentry:\n  ret i32 %x\n}").unwrap();
        assert_eq!(g.linkage, Linkage::External);
        assert!(print_function(&g).starts_with("define i32 @ext"));
    }

    const EXAMPLE_F1: &str = r#"
define i32 @f1(i32 %n) {
L1:
  %x1 = call i32 @start(i32 %n)
  %x2 = icmp slt i32 %x1, 0
  br i1 %x2, label %L2, label %L3
L2:
  %x3 = call i32 @body(i32 %x1)
  br label %L4
L3:
  %x4 = call i32 @other(i32 %x1)
  br label %L4
L4:
  %x5 = phi i32 [ %x3, %L2 ], [ %x4, %L3 ]
  %x6 = call i32 @end(i32 %x5)
  ret i32 %x6
}
"#;

    #[test]
    fn parses_paper_motivating_function() {
        let f = parse_function(EXAMPLE_F1).unwrap();
        assert_eq!(f.name, "f1");
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_insts(), 10);
        let l4 = f.block_by_name("L4").unwrap();
        assert_eq!(f.block(l4).phis.len(), 1);
    }

    #[test]
    fn roundtrips_through_printer() {
        let f = parse_function(EXAMPLE_F1).unwrap();
        let printed = print_function(&f);
        let reparsed = parse_function(&printed).unwrap();
        assert_eq!(print_function(&reparsed), printed);
        assert_eq!(reparsed.num_insts(), f.num_insts());
        assert_eq!(reparsed.num_blocks(), f.num_blocks());
    }

    #[test]
    fn declaration_linkage_parses_and_round_trips() {
        let text = "declare internal i32 @local_helper(i32)\ndeclare i32 @ext(i32)\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.declarations()[0].linkage, Linkage::Internal);
        assert_eq!(m.declarations()[1].linkage, Linkage::External);
        let printed = print_module(&m);
        assert!(printed.contains("declare internal i32 @local_helper(i32)"));
        let again = parse_module(&printed).unwrap();
        assert_eq!(again.declarations(), m.declarations());
        assert_eq!(print_module(&again), printed);
        // An explicit `external` keyword parses and prints as the default.
        let e = parse_module("declare external i32 @e(i32)").unwrap();
        assert_eq!(e.declarations()[0].linkage, Linkage::External);
        assert!(print_module(&e).contains("declare i32 @e(i32)"));
    }

    #[test]
    fn parses_module_with_declarations() {
        let text = format!("declare i32 @start(i32)\ndeclare i32 @end(i32)\n{EXAMPLE_F1}");
        let m = parse_module(&text).unwrap();
        assert_eq!(m.declarations().len(), 2);
        assert_eq!(m.num_functions(), 1);
        let printed = print_module(&m);
        let reparsed = parse_module(&printed).unwrap();
        assert_eq!(reparsed.declarations().len(), 2);
    }

    #[test]
    fn parses_all_instruction_forms() {
        let text = r#"
define i64 @all(i64 %a, ptr %p, double %d) {
entry:
  %m = alloca i64
  store i64 %a, ptr %m
  %l = load i64, ptr %m
  %g = getelementptr ptr %p, i64 %l, stride 8
  %add = add i64 %l, 3
  %shifted = shl i64 %add, 1
  %f = fadd double %d, 1.5
  %fi = fptosi double %f to i64
  %c = icmp eq i64 %add, %fi
  %sel = select i1 %c, i64 %add, i64 %fi
  %tr = trunc i64 %sel to i32
  %w = zext i32 %tr to i64
  switch i64 %w, label %other [ 1: label %one, 2: label %two ]
one:
  br label %done
two:
  br label %done
other:
  %u = invoke i64 @may_throw(i64 %a) to label %done unwind label %pad
pad:
  %lp = landingpad
  resume ptr %lp
done:
  %r = phi i64 [ 1, %one ], [ 2, %two ], [ %u, %other ]
  ret i64 %r
}
"#;
        let f = parse_function(text).unwrap();
        assert_eq!(f.num_blocks(), 6);
        let printed = print_function(&f);
        let again = parse_function(&printed).unwrap();
        assert_eq!(print_function(&again), printed);
    }

    #[test]
    fn rejects_unknown_value() {
        let text = "define i32 @f(i32 %n) {\nentry:\n  ret i32 %missing\n}";
        let err = parse_function(text).unwrap_err();
        assert!(err.message.contains("undefined value"));
    }

    #[test]
    fn rejects_unknown_label() {
        let text = "define void @f() {\nentry:\n  br label %nowhere\n}";
        let err = parse_function(text).unwrap_err();
        assert!(err.message.contains("unknown label"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_module("definitely not ir").is_err());
        assert!(parse_module("define i32 @f(").is_err());
    }

    #[test]
    fn rejects_duplicate_definition_without_panicking() {
        let one = "define i32 @dup(i32 %x) {\nentry:\n  ret i32 %x\n}\n";
        let text = format!("{one}{one}");
        let err = parse_module(&text).unwrap_err();
        assert!(err.message.contains("duplicate function definition @dup"));
        // The recovering path keeps the first copy and records the second.
        let recovered = parse_module_recovering(&text);
        assert_eq!(recovered.module.num_functions(), 1);
        assert_eq!(recovered.skipped.len(), 1);
        assert_eq!(recovered.skipped[0].name, "dup");
    }

    const MIXED: &str = "\
define i32 @good1(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define i32 @bad(i32 %x) {
entry:
  %r = frobnicate i32 %x, 1
  ret i32 %r
}
define i32 @good2(i32 %x) {
entry:
  ret i32 %x
}
";

    #[test]
    fn recovers_around_broken_function() {
        assert!(parse_module(MIXED).is_err());
        let recovered = parse_module_recovering(MIXED);
        assert_eq!(recovered.module.num_functions(), 2);
        assert!(recovered.module.function("good1").is_some());
        assert!(recovered.module.function("good2").is_some());
        assert_eq!(recovered.skipped.len(), 1);
        let skip = &recovered.skipped[0];
        assert_eq!(skip.name, "bad");
        assert_eq!(skip.line, 8);
        assert!(skip.message.contains("unknown instruction 'frobnicate'"));
    }

    #[test]
    fn recovers_from_lexical_and_structural_noise() {
        let text = "\
$$$
define i32 @ok(i32 %x) {
entry:
  ret i32 %x
}
stray words here
define i32 @poisoned(i32 %x) {
entry:
  %r = add i32 %x, 1 ###
  ret i32 %r
}
declare i32 @ext(i32)
";
        let recovered = parse_module_recovering(text);
        assert_eq!(recovered.module.num_functions(), 1);
        assert!(recovered.module.function("ok").is_some());
        assert_eq!(recovered.module.declarations().len(), 1);
        // Three casualties: the leading noise, the stray words, and the
        // function whose body contains a lexical error.
        assert_eq!(recovered.skipped.len(), 3);
        assert!(recovered
            .skipped
            .iter()
            .any(|s| s.name == "poisoned" && s.message.contains("unexpected character")));
        // An unterminated body swallows nothing past the next `define`.
        let truncated = "\
define i32 @cut(i32 %x) {
entry:
  %r = add i32 %x, 1
define i32 @after(i32 %x) {
entry:
  ret i32 %x
}
";
        let recovered = parse_module_recovering(truncated);
        assert_eq!(recovered.module.num_functions(), 1);
        assert!(recovered.module.function("after").is_some());
        assert_eq!(recovered.skipped.len(), 1);
        assert_eq!(recovered.skipped[0].name, "cut");
    }

    #[test]
    fn recovery_is_invisible_on_clean_input() {
        let text = format!("declare i32 @start(i32)\ndeclare i32 @end(i32)\n{EXAMPLE_F1}");
        let strict = parse_module(&text).unwrap();
        let recovered = parse_module_recovering(&text);
        assert!(!recovered.degraded());
        assert_eq!(print_module(&recovered.module), print_module(&strict));
    }
}
