//! Parser for the textual IR produced by [`crate::printer`].
//!
//! The grammar is a compact LLVM-like syntax; see the crate-level docs for an
//! example. Parsing is two-phase: the text is first turned into a small AST,
//! then lowered to [`Function`]s with full forward-reference resolution (phi
//! nodes and branches may refer to values and labels defined later).

use crate::function::{Function, Linkage};
use crate::ids::{BlockId, InstId};
use crate::instruction::{BinOp, CastKind, ICmpPred, InstKind};
use crate::module::{FuncDecl, Module};
use crate::types::Type;
use crate::value::{Constant, Value};
use std::collections::HashMap;
use std::fmt;

/// Error produced when parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line where the problem was detected.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a whole module (declarations and definitions).
pub fn parse_module(text: &str) -> Result<Module> {
    let mut tokens = Lexer::new(text).tokenize()?;
    tokens.reverse(); // use as a stack: pop() yields the next token
    let mut parser = Parser { tokens };
    parser.module()
}

/// Parses a single function definition.
pub fn parse_function(text: &str) -> Result<Function> {
    let module = parse_module(text)?;
    module
        .functions()
        .first()
        .cloned()
        .ok_or_else(|| ParseError {
            message: "input contains no function definition".into(),
            line: 1,
        })
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),   // identifiers, keywords, type names
    Local(String),  // %name
    Global(String), // @name
    Int(i64),
    Float(f64),
    Punct(char), // ( ) { } [ ] , = :
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    tok: Tok,
    line: usize,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            chars: text.chars().peekable(),
            line: 1,
        }
    }

    fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        while let Some(&c) = self.chars.peek() {
            match c {
                '\n' => {
                    self.line += 1;
                    self.chars.next();
                }
                c if c.is_whitespace() => {
                    self.chars.next();
                }
                ';' => {
                    // Comment until end of line.
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.chars.next();
                    }
                }
                '%' | '@' => {
                    let sigil = c;
                    self.chars.next();
                    let name = self.ident();
                    let tok = if sigil == '%' {
                        Tok::Local(name)
                    } else {
                        Tok::Global(name)
                    };
                    out.push(Token {
                        tok,
                        line: self.line,
                    });
                }
                '(' | ')' | '{' | '}' | '[' | ']' | ',' | '=' | ':' => {
                    self.chars.next();
                    out.push(Token {
                        tok: Tok::Punct(c),
                        line: self.line,
                    });
                }
                c if c.is_ascii_digit() || c == '-' || c == '+' => {
                    out.push(self.number()?);
                }
                c if c.is_alphabetic() || c == '_' || c == '.' => {
                    let word = self.ident();
                    out.push(Token {
                        tok: Tok::Word(word),
                        line: self.line,
                    });
                }
                other => {
                    return Err(ParseError {
                        message: format!("unexpected character '{other}'"),
                        line: self.line,
                    })
                }
            }
        }
        Ok(out)
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
                s.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self) -> Result<Token> {
        let mut s = String::new();
        if matches!(self.chars.peek(), Some('-') | Some('+')) {
            s.push(self.chars.next().unwrap());
        }
        let mut is_float = false;
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.chars.next();
            } else if c == '.' || c == 'e' || c == 'E' {
                is_float = true;
                s.push(c);
                self.chars.next();
                if (c == 'e' || c == 'E') && matches!(self.chars.peek(), Some('-') | Some('+')) {
                    s.push(self.chars.next().unwrap());
                }
            } else {
                break;
            }
        }
        let line = self.line;
        if is_float {
            s.parse::<f64>()
                .map(|v| Token {
                    tok: Tok::Float(v),
                    line,
                })
                .map_err(|_| ParseError {
                    message: format!("bad float literal '{s}'"),
                    line,
                })
        } else {
            s.parse::<i64>()
                .map(|v| Token {
                    tok: Tok::Int(v),
                    line,
                })
                .map_err(|_| ParseError {
                    message: format!("bad integer literal '{s}'"),
                    line,
                })
        }
    }
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Operand {
    Local(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Undef,
    Null,
}

#[derive(Debug, Clone)]
struct TypedOperand {
    ty: Type,
    op: Operand,
}

#[derive(Debug, Clone)]
enum AstInst {
    Binary {
        op: BinOp,
        ty: Type,
        lhs: Operand,
        rhs: Operand,
    },
    ICmp {
        pred: ICmpPred,
        ty: Type,
        lhs: Operand,
        rhs: Operand,
    },
    Select {
        cond: TypedOperand,
        if_true: TypedOperand,
        if_false: TypedOperand,
    },
    Call {
        ret: Type,
        callee: String,
        args: Vec<TypedOperand>,
    },
    Invoke {
        ret: Type,
        callee: String,
        args: Vec<TypedOperand>,
        normal: String,
        unwind: String,
    },
    LandingPad,
    Resume {
        value: TypedOperand,
    },
    Phi {
        ty: Type,
        incomings: Vec<(Operand, String)>,
    },
    Alloca {
        ty: Type,
    },
    Load {
        ty: Type,
        ptr: TypedOperand,
    },
    Store {
        value: TypedOperand,
        ptr: TypedOperand,
    },
    Gep {
        base: TypedOperand,
        index: TypedOperand,
        stride: u32,
    },
    Cast {
        kind: CastKind,
        value: TypedOperand,
        to: Type,
    },
    Br {
        dest: String,
    },
    CondBr {
        cond: TypedOperand,
        if_true: String,
        if_false: String,
    },
    Switch {
        value: TypedOperand,
        default: String,
        cases: Vec<(i64, String)>,
    },
    Ret {
        value: Option<TypedOperand>,
    },
    Unreachable,
}

#[derive(Debug, Clone)]
struct AstStmt {
    result: Option<String>,
    inst: AstInst,
    line: usize,
}

#[derive(Debug, Clone)]
struct AstBlock {
    label: String,
    stmts: Vec<AstStmt>,
}

#[derive(Debug, Clone)]
struct AstFunction {
    name: String,
    ret: Type,
    linkage: Linkage,
    params: Vec<(Type, String)>,
    blocks: Vec<AstBlock>,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>, // reversed; next token is the last element
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.last().map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.tokens.last().map(|t| t.line).unwrap_or(0)
    }

    fn next(&mut self) -> Result<Token> {
        self.tokens.pop().ok_or(ParseError {
            message: "unexpected end of input".into(),
            line: 0,
        })
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        let t = self.next()?;
        if t.tok == Tok::Punct(c) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected '{c}', found {:?}", t.tok),
                line: t.line,
            })
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<()> {
        let t = self.next()?;
        if t.tok == Tok::Word(w.to_string()) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected '{w}', found {:?}", t.tok),
                line: t.line,
            })
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.tokens.pop();
            true
        } else {
            false
        }
    }

    fn word(&mut self) -> Result<String> {
        let t = self.next()?;
        match t.tok {
            Tok::Word(w) => Ok(w),
            other => Err(ParseError {
                message: format!("expected identifier, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn global(&mut self) -> Result<String> {
        let t = self.next()?;
        match t.tok {
            Tok::Global(name) => Ok(name),
            other => Err(ParseError {
                message: format!("expected @name, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn local(&mut self) -> Result<String> {
        let t = self.next()?;
        match t.tok {
            Tok::Local(name) => Ok(name),
            other => Err(ParseError {
                message: format!("expected %name, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn ty(&mut self) -> Result<Type> {
        let w = self.word()?;
        parse_type(&w).ok_or_else(|| ParseError {
            message: format!("unknown type '{w}'"),
            line: self.line(),
        })
    }

    fn label(&mut self) -> Result<String> {
        self.expect_word("label")?;
        self.local()
    }

    fn operand(&mut self) -> Result<Operand> {
        let t = self.next()?;
        match t.tok {
            Tok::Local(name) => Ok(Operand::Local(name)),
            Tok::Int(v) => Ok(Operand::Int(v)),
            Tok::Float(v) => Ok(Operand::Float(v)),
            Tok::Word(w) => match w.as_str() {
                "true" => Ok(Operand::Bool(true)),
                "false" => Ok(Operand::Bool(false)),
                "undef" => Ok(Operand::Undef),
                "null" => Ok(Operand::Null),
                other => Err(ParseError {
                    message: format!("expected operand, found '{other}'"),
                    line: t.line,
                }),
            },
            other => Err(ParseError {
                message: format!("expected operand, found {other:?}"),
                line: t.line,
            }),
        }
    }

    fn typed_operand(&mut self) -> Result<TypedOperand> {
        let ty = self.ty()?;
        let op = self.operand()?;
        Ok(TypedOperand { ty, op })
    }

    fn module(&mut self) -> Result<Module> {
        let mut module = Module::new("parsed");
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Word(w) if w == "declare" => {
                    self.tokens.pop();
                    let linkage = self.linkage();
                    let ret = self.ty()?;
                    let name = self.global()?;
                    self.expect_punct('(')?;
                    let mut params = Vec::new();
                    if !self.eat_punct(')') {
                        loop {
                            params.push(self.ty()?);
                            // Optional parameter name in declarations.
                            if matches!(self.peek(), Some(Tok::Local(_))) {
                                self.tokens.pop();
                            }
                            if self.eat_punct(')') {
                                break;
                            }
                            self.expect_punct(',')?;
                        }
                    }
                    module.declare(FuncDecl {
                        name,
                        params,
                        ret_ty: ret,
                        linkage,
                    });
                }
                Tok::Word(w) if w == "define" => {
                    let ast = self.function()?;
                    module.add_function(lower_function(&ast)?);
                }
                other => {
                    let other = other.clone();
                    return self.err(format!("expected 'define' or 'declare', found {other:?}"));
                }
            }
        }
        Ok(module)
    }

    /// Consumes an optional `internal`/`external` linkage keyword (shared by
    /// `define` and `declare`); absent means external.
    fn linkage(&mut self) -> Linkage {
        match self.peek() {
            Some(Tok::Word(w)) if w == "internal" => {
                self.tokens.pop();
                Linkage::Internal
            }
            Some(Tok::Word(w)) if w == "external" => {
                self.tokens.pop();
                Linkage::External
            }
            _ => Linkage::External,
        }
    }

    fn function(&mut self) -> Result<AstFunction> {
        self.expect_word("define")?;
        let linkage = self.linkage();
        let ret = self.ty()?;
        let name = self.global()?;
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.eat_punct(')') {
            loop {
                let ty = self.ty()?;
                let pname = self.local()?;
                params.push((ty, pname));
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct('{')?;

        let mut blocks: Vec<AstBlock> = Vec::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            // A block label: `name:`
            let label = self.word()?;
            self.expect_punct(':')?;
            let mut stmts = Vec::new();
            loop {
                match self.peek() {
                    Some(Tok::Punct('}')) => break,
                    // Next block label: Word followed by ':'
                    Some(Tok::Word(_)) if self.peek_is_label() => break,
                    None => return self.err("unterminated function body"),
                    _ => {
                        let stmt = self.statement()?;
                        stmts.push(stmt);
                    }
                }
            }
            blocks.push(AstBlock { label, stmts });
        }
        Ok(AstFunction {
            name,
            ret,
            linkage,
            params,
            blocks,
        })
    }

    /// Returns true when the next two tokens form a block label (`word ':'`).
    fn peek_is_label(&self) -> bool {
        let n = self.tokens.len();
        if n < 2 {
            return false;
        }
        matches!(self.tokens[n - 1].tok, Tok::Word(_)) && self.tokens[n - 2].tok == Tok::Punct(':')
    }

    fn statement(&mut self) -> Result<AstStmt> {
        let line = self.line();
        let mut result = None;
        if let Some(Tok::Local(_)) = self.peek() {
            result = Some(self.local()?);
            self.expect_punct('=')?;
        }
        let inst = self.instruction()?;
        Ok(AstStmt { result, inst, line })
    }

    fn call_args(&mut self) -> Result<Vec<TypedOperand>> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        if !self.eat_punct(')') {
            loop {
                args.push(self.typed_operand()?);
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        Ok(args)
    }

    fn instruction(&mut self) -> Result<AstInst> {
        let word = self.word()?;
        if let Some(op) = parse_binop(&word) {
            let ty = self.ty()?;
            let lhs = self.operand()?;
            self.expect_punct(',')?;
            let rhs = self.operand()?;
            return Ok(AstInst::Binary { op, ty, lhs, rhs });
        }
        if let Some(kind) = parse_cast(&word) {
            let value = self.typed_operand()?;
            self.expect_word("to")?;
            let to = self.ty()?;
            return Ok(AstInst::Cast { kind, value, to });
        }
        match word.as_str() {
            "icmp" => {
                let predw = self.word()?;
                let pred = parse_icmp(&predw).ok_or_else(|| ParseError {
                    message: format!("unknown icmp predicate '{predw}'"),
                    line: self.line(),
                })?;
                let ty = self.ty()?;
                let lhs = self.operand()?;
                self.expect_punct(',')?;
                let rhs = self.operand()?;
                Ok(AstInst::ICmp { pred, ty, lhs, rhs })
            }
            "select" => {
                let cond = self.typed_operand()?;
                self.expect_punct(',')?;
                let if_true = self.typed_operand()?;
                self.expect_punct(',')?;
                let if_false = self.typed_operand()?;
                Ok(AstInst::Select {
                    cond,
                    if_true,
                    if_false,
                })
            }
            "call" => {
                let ret = self.ty()?;
                let callee = self.global()?;
                let args = self.call_args()?;
                Ok(AstInst::Call { ret, callee, args })
            }
            "invoke" => {
                let ret = self.ty()?;
                let callee = self.global()?;
                let args = self.call_args()?;
                self.expect_word("to")?;
                let normal = self.label()?;
                self.expect_word("unwind")?;
                let unwind = self.label()?;
                Ok(AstInst::Invoke {
                    ret,
                    callee,
                    args,
                    normal,
                    unwind,
                })
            }
            "landingpad" => Ok(AstInst::LandingPad),
            "resume" => Ok(AstInst::Resume {
                value: self.typed_operand()?,
            }),
            "phi" => {
                let ty = self.ty()?;
                let mut incomings = Vec::new();
                loop {
                    self.expect_punct('[')?;
                    let value = self.operand()?;
                    self.expect_punct(',')?;
                    let block = self.local()?;
                    self.expect_punct(']')?;
                    incomings.push((value, block));
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                Ok(AstInst::Phi { ty, incomings })
            }
            "alloca" => Ok(AstInst::Alloca { ty: self.ty()? }),
            "load" => {
                let ty = self.ty()?;
                self.expect_punct(',')?;
                let ptr = self.typed_operand()?;
                Ok(AstInst::Load { ty, ptr })
            }
            "store" => {
                let value = self.typed_operand()?;
                self.expect_punct(',')?;
                let ptr = self.typed_operand()?;
                Ok(AstInst::Store { value, ptr })
            }
            "getelementptr" => {
                let base = self.typed_operand()?;
                self.expect_punct(',')?;
                let index = self.typed_operand()?;
                self.expect_punct(',')?;
                self.expect_word("stride")?;
                let stride = match self.next()?.tok {
                    Tok::Int(v) if v >= 0 => v as u32,
                    other => return self.err(format!("expected stride integer, found {other:?}")),
                };
                Ok(AstInst::Gep {
                    base,
                    index,
                    stride,
                })
            }
            "br" => {
                if let Some(Tok::Word(w)) = self.peek() {
                    if w == "label" {
                        let dest = self.label()?;
                        return Ok(AstInst::Br { dest });
                    }
                }
                let cond = self.typed_operand()?;
                self.expect_punct(',')?;
                let if_true = self.label()?;
                self.expect_punct(',')?;
                let if_false = self.label()?;
                Ok(AstInst::CondBr {
                    cond,
                    if_true,
                    if_false,
                })
            }
            "switch" => {
                let value = self.typed_operand()?;
                self.expect_punct(',')?;
                let default = self.label()?;
                self.expect_punct('[')?;
                let mut cases = Vec::new();
                if !self.eat_punct(']') {
                    loop {
                        let c = match self.next()?.tok {
                            Tok::Int(v) => v,
                            other => {
                                return self.err(format!("expected case value, found {other:?}"))
                            }
                        };
                        self.expect_punct(':')?;
                        let dest = self.label()?;
                        cases.push((c, dest));
                        if self.eat_punct(']') {
                            break;
                        }
                        self.expect_punct(',')?;
                    }
                }
                Ok(AstInst::Switch {
                    value,
                    default,
                    cases,
                })
            }
            "ret" => {
                if let Some(Tok::Word(w)) = self.peek() {
                    if w == "void" {
                        self.tokens.pop();
                        return Ok(AstInst::Ret { value: None });
                    }
                }
                Ok(AstInst::Ret {
                    value: Some(self.typed_operand()?),
                })
            }
            "unreachable" => Ok(AstInst::Unreachable),
            other => self.err(format!("unknown instruction '{other}'")),
        }
    }
}

fn parse_type(word: &str) -> Option<Type> {
    match word {
        "void" => Some(Type::Void),
        "double" => Some(Type::Float),
        "ptr" => Some(Type::Ptr),
        w if w.starts_with('i') => w[1..].parse::<u16>().ok().map(Type::Int),
        _ => None,
    }
}

fn parse_binop(word: &str) -> Option<BinOp> {
    BinOp::all()
        .iter()
        .copied()
        .find(|op| op.mnemonic() == word)
}

fn parse_icmp(word: &str) -> Option<ICmpPred> {
    ICmpPred::all()
        .iter()
        .copied()
        .find(|p| p.mnemonic() == word)
}

fn parse_cast(word: &str) -> Option<CastKind> {
    [
        CastKind::Trunc,
        CastKind::ZExt,
        CastKind::SExt,
        CastKind::Bitcast,
        CastKind::PtrToInt,
        CastKind::IntToPtr,
        CastKind::SIToFP,
        CastKind::FPToSI,
    ]
    .into_iter()
    .find(|k| k.mnemonic() == word)
}

// ---------------------------------------------------------------------------
// Lowering (AST -> Function)
// ---------------------------------------------------------------------------

struct Env {
    values: HashMap<String, Value>,
    blocks: HashMap<String, BlockId>,
}

impl Env {
    fn resolve(&self, op: &Operand, ty: Type, strict: bool, line: usize) -> Result<Value> {
        match op {
            Operand::Local(name) => match self.values.get(name) {
                Some(v) => Ok(*v),
                None if !strict => Ok(Value::undef(ty)),
                None => Err(ParseError {
                    message: format!("use of undefined value %{name}"),
                    line,
                }),
            },
            Operand::Int(v) => {
                let bits = if ty.is_int() { ty.bits() } else { 64 };
                Ok(Value::Const(Constant::Int { bits, value: *v }))
            }
            Operand::Float(v) => Ok(Value::float(*v)),
            Operand::Bool(b) => Ok(Value::bool(*b)),
            Operand::Undef => Ok(Value::undef(ty)),
            Operand::Null => Ok(Value::Const(Constant::Null)),
        }
    }

    fn block(&self, name: &str, line: usize) -> Result<BlockId> {
        self.blocks.get(name).copied().ok_or_else(|| ParseError {
            message: format!("reference to unknown label %{name}"),
            line,
        })
    }
}

fn lower_function(ast: &AstFunction) -> Result<Function> {
    let mut function = Function::new(
        ast.name.clone(),
        ast.params.iter().map(|(t, _)| *t).collect(),
        ast.ret,
    );
    function.linkage = ast.linkage;
    function.param_names = ast.params.iter().map(|(_, n)| n.clone()).collect();

    let mut env = Env {
        values: HashMap::new(),
        blocks: HashMap::new(),
    };
    for (i, (_, name)) in ast.params.iter().enumerate() {
        env.values.insert(name.clone(), Value::Arg(i as u32));
    }
    for block in &ast.blocks {
        let id = function.add_block(block.label.clone());
        if env.blocks.insert(block.label.clone(), id).is_some() {
            return Err(ParseError {
                message: format!("duplicate block label {}", block.label),
                line: 0,
            });
        }
    }

    // Phase 1: create instructions with lenient operand resolution, recording
    // result names as they become available.
    let mut created: Vec<(InstId, &AstStmt)> = Vec::new();
    for block in &ast.blocks {
        let block_id = env.blocks[&block.label];
        for stmt in &block.stmts {
            let (kind, ty) = build_kind(&stmt.inst, &env, false, stmt.line)?;
            let id = function.append_inst(block_id, kind, ty);
            if let Some(name) = &stmt.result {
                if !ty.is_first_class() {
                    return Err(ParseError {
                        message: format!("instruction producing void cannot be named %{name}"),
                        line: stmt.line,
                    });
                }
                function.set_inst_name(id, name.clone());
                env.values.insert(name.clone(), Value::Inst(id));
            }
            created.push((id, stmt));
        }
    }

    // Phase 2: rebuild operands with strict resolution (forward references are
    // now known).
    for (id, stmt) in created {
        let (kind, _) = build_kind(&stmt.inst, &env, true, stmt.line)?;
        function.inst_mut(id).kind = kind;
    }
    Ok(function)
}

fn build_kind(inst: &AstInst, env: &Env, strict: bool, line: usize) -> Result<(InstKind, Type)> {
    let r = |op: &Operand, ty: Type| env.resolve(op, ty, strict, line);
    let rt = |t: &TypedOperand| env.resolve(&t.op, t.ty, strict, line);
    Ok(match inst {
        AstInst::Binary { op, ty, lhs, rhs } => (
            InstKind::Binary {
                op: *op,
                lhs: r(lhs, *ty)?,
                rhs: r(rhs, *ty)?,
            },
            *ty,
        ),
        AstInst::ICmp { pred, ty, lhs, rhs } => (
            InstKind::ICmp {
                pred: *pred,
                lhs: r(lhs, *ty)?,
                rhs: r(rhs, *ty)?,
            },
            Type::I1,
        ),
        AstInst::Select {
            cond,
            if_true,
            if_false,
        } => (
            InstKind::Select {
                cond: rt(cond)?,
                if_true: rt(if_true)?,
                if_false: rt(if_false)?,
            },
            if_true.ty,
        ),
        AstInst::Call { ret, callee, args } => (
            InstKind::Call {
                callee: callee.clone(),
                args: args.iter().map(rt).collect::<Result<_>>()?,
            },
            *ret,
        ),
        AstInst::Invoke {
            ret,
            callee,
            args,
            normal,
            unwind,
        } => (
            InstKind::Invoke {
                callee: callee.clone(),
                args: args.iter().map(rt).collect::<Result<_>>()?,
                normal: env.block(normal, line)?,
                unwind: env.block(unwind, line)?,
            },
            *ret,
        ),
        AstInst::LandingPad => (InstKind::LandingPad, Type::Ptr),
        AstInst::Resume { value } => (InstKind::Resume { value: rt(value)? }, Type::Void),
        AstInst::Phi { ty, incomings } => (
            InstKind::Phi {
                incomings: incomings
                    .iter()
                    .map(|(v, b)| Ok((r(v, *ty)?, env.block(b, line)?)))
                    .collect::<Result<_>>()?,
            },
            *ty,
        ),
        AstInst::Alloca { ty } => (InstKind::Alloca { ty: *ty }, Type::Ptr),
        AstInst::Load { ty, ptr } => (InstKind::Load { ptr: rt(ptr)? }, *ty),
        AstInst::Store { value, ptr } => (
            InstKind::Store {
                value: rt(value)?,
                ptr: rt(ptr)?,
            },
            Type::Void,
        ),
        AstInst::Gep {
            base,
            index,
            stride,
        } => (
            InstKind::Gep {
                base: rt(base)?,
                index: rt(index)?,
                stride: *stride,
            },
            Type::Ptr,
        ),
        AstInst::Cast { kind, value, to } => (
            InstKind::Cast {
                kind: *kind,
                value: rt(value)?,
            },
            *to,
        ),
        AstInst::Br { dest } => (
            InstKind::Br {
                dest: env.block(dest, line)?,
            },
            Type::Void,
        ),
        AstInst::CondBr {
            cond,
            if_true,
            if_false,
        } => (
            InstKind::CondBr {
                cond: rt(cond)?,
                if_true: env.block(if_true, line)?,
                if_false: env.block(if_false, line)?,
            },
            Type::Void,
        ),
        AstInst::Switch {
            value,
            default,
            cases,
        } => (
            InstKind::Switch {
                value: rt(value)?,
                default: env.block(default, line)?,
                cases: cases
                    .iter()
                    .map(|(c, b)| Ok((*c, env.block(b, line)?)))
                    .collect::<Result<_>>()?,
            },
            Type::Void,
        ),
        AstInst::Ret { value } => (
            InstKind::Ret {
                value: value.as_ref().map(rt).transpose()?,
            },
            Type::Void,
        ),
        AstInst::Unreachable => (InstKind::Unreachable, Type::Void),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_function, print_module};

    #[test]
    fn linkage_parses_and_round_trips() {
        let text =
            "define internal i32 @local(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n";
        let f = parse_function(text).unwrap();
        assert_eq!(f.linkage, Linkage::Internal);
        let printed = print_function(&f);
        assert!(printed.starts_with("define internal i32 @local"));
        assert_eq!(print_function(&parse_function(&printed).unwrap()), printed);
        // An explicit `external` keyword parses and prints as the default.
        let g =
            parse_function("define external i32 @ext(i32 %x) {\nentry:\n  ret i32 %x\n}").unwrap();
        assert_eq!(g.linkage, Linkage::External);
        assert!(print_function(&g).starts_with("define i32 @ext"));
    }

    const EXAMPLE_F1: &str = r#"
define i32 @f1(i32 %n) {
L1:
  %x1 = call i32 @start(i32 %n)
  %x2 = icmp slt i32 %x1, 0
  br i1 %x2, label %L2, label %L3
L2:
  %x3 = call i32 @body(i32 %x1)
  br label %L4
L3:
  %x4 = call i32 @other(i32 %x1)
  br label %L4
L4:
  %x5 = phi i32 [ %x3, %L2 ], [ %x4, %L3 ]
  %x6 = call i32 @end(i32 %x5)
  ret i32 %x6
}
"#;

    #[test]
    fn parses_paper_motivating_function() {
        let f = parse_function(EXAMPLE_F1).unwrap();
        assert_eq!(f.name, "f1");
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_insts(), 10);
        let l4 = f.block_by_name("L4").unwrap();
        assert_eq!(f.block(l4).phis.len(), 1);
    }

    #[test]
    fn roundtrips_through_printer() {
        let f = parse_function(EXAMPLE_F1).unwrap();
        let printed = print_function(&f);
        let reparsed = parse_function(&printed).unwrap();
        assert_eq!(print_function(&reparsed), printed);
        assert_eq!(reparsed.num_insts(), f.num_insts());
        assert_eq!(reparsed.num_blocks(), f.num_blocks());
    }

    #[test]
    fn declaration_linkage_parses_and_round_trips() {
        let text = "declare internal i32 @local_helper(i32)\ndeclare i32 @ext(i32)\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.declarations()[0].linkage, Linkage::Internal);
        assert_eq!(m.declarations()[1].linkage, Linkage::External);
        let printed = print_module(&m);
        assert!(printed.contains("declare internal i32 @local_helper(i32)"));
        let again = parse_module(&printed).unwrap();
        assert_eq!(again.declarations(), m.declarations());
        assert_eq!(print_module(&again), printed);
        // An explicit `external` keyword parses and prints as the default.
        let e = parse_module("declare external i32 @e(i32)").unwrap();
        assert_eq!(e.declarations()[0].linkage, Linkage::External);
        assert!(print_module(&e).contains("declare i32 @e(i32)"));
    }

    #[test]
    fn parses_module_with_declarations() {
        let text = format!("declare i32 @start(i32)\ndeclare i32 @end(i32)\n{EXAMPLE_F1}");
        let m = parse_module(&text).unwrap();
        assert_eq!(m.declarations().len(), 2);
        assert_eq!(m.num_functions(), 1);
        let printed = print_module(&m);
        let reparsed = parse_module(&printed).unwrap();
        assert_eq!(reparsed.declarations().len(), 2);
    }

    #[test]
    fn parses_all_instruction_forms() {
        let text = r#"
define i64 @all(i64 %a, ptr %p, double %d) {
entry:
  %m = alloca i64
  store i64 %a, ptr %m
  %l = load i64, ptr %m
  %g = getelementptr ptr %p, i64 %l, stride 8
  %add = add i64 %l, 3
  %shifted = shl i64 %add, 1
  %f = fadd double %d, 1.5
  %fi = fptosi double %f to i64
  %c = icmp eq i64 %add, %fi
  %sel = select i1 %c, i64 %add, i64 %fi
  %tr = trunc i64 %sel to i32
  %w = zext i32 %tr to i64
  switch i64 %w, label %other [ 1: label %one, 2: label %two ]
one:
  br label %done
two:
  br label %done
other:
  %u = invoke i64 @may_throw(i64 %a) to label %done unwind label %pad
pad:
  %lp = landingpad
  resume ptr %lp
done:
  %r = phi i64 [ 1, %one ], [ 2, %two ], [ %u, %other ]
  ret i64 %r
}
"#;
        let f = parse_function(text).unwrap();
        assert_eq!(f.num_blocks(), 6);
        let printed = print_function(&f);
        let again = parse_function(&printed).unwrap();
        assert_eq!(print_function(&again), printed);
    }

    #[test]
    fn rejects_unknown_value() {
        let text = "define i32 @f(i32 %n) {\nentry:\n  ret i32 %missing\n}";
        let err = parse_function(text).unwrap_err();
        assert!(err.message.contains("undefined value"));
    }

    #[test]
    fn rejects_unknown_label() {
        let text = "define void @f() {\nentry:\n  br label %nowhere\n}";
        let err = parse_function(text).unwrap_err();
        assert!(err.message.contains("unknown label"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_module("definitely not ir").is_err());
        assert!(parse_module("define i32 @f(").is_err());
    }
}
