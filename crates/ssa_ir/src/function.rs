//! Functions, basic blocks and the mutation API used by all passes.

use crate::ids::{Arena, BlockId, InstId};
use crate::instruction::{InstData, InstKind};
use crate::types::Type;
use crate::value::Value;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A basic block: a label, leading phi-nodes, ordinary instructions and an
/// optional terminator.
///
/// Phi-nodes are kept in a dedicated list (instead of being the leading
/// instructions of `insts`) because SalSSA treats them as attached to the
/// block's label during alignment and code generation (Section 4.1.1).
#[derive(Clone, Debug, Default)]
pub struct BlockData {
    /// The label of the block.
    pub name: String,
    /// Phi-nodes of the block, in order.
    pub phis: Vec<InstId>,
    /// Ordinary (non-phi, non-terminator) instructions, in order.
    pub insts: Vec<InstId>,
    /// The terminator, if the block has been terminated.
    pub term: Option<InstId>,
}

impl BlockData {
    /// Iterates over all instruction ids of the block: phis, then ordinary
    /// instructions, then the terminator.
    pub fn all_insts(&self) -> impl Iterator<Item = InstId> + '_ {
        self.phis
            .iter()
            .copied()
            .chain(self.insts.iter().copied())
            .chain(self.term.iter().copied())
    }

    /// Number of instructions in the block (phis + body + terminator).
    pub fn len(&self) -> usize {
        self.phis.len() + self.insts.len() + usize::from(self.term.is_some())
    }

    /// Returns `true` when the block holds no instructions at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Linkage of a function symbol: whether it participates in cross-module
/// symbol resolution.
///
/// `Internal` models LLVM's `internal`/`static` linkage: the symbol is local
/// to its translation unit, so two modules may define different functions of
/// the same internal name without an ODR conflict. The cross-module merge
/// hazard rules and [`crate::linker::link_modules`] exploit this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Visible to other modules; same-named external definitions must be
    /// identical (the ODR rule).
    #[default]
    External,
    /// Local to the defining module; never clashes across modules.
    Internal,
}

impl fmt::Display for Linkage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Linkage::External => write!(f, "external"),
            Linkage::Internal => write!(f, "internal"),
        }
    }
}

/// The cached structural key of a function: the normalized print it had when
/// the key was computed, plus the symbol name it was computed under (a direct
/// `function.name = ...` field write cannot invalidate the cache, so lookups
/// validate the name instead — self-calls make the normalized print
/// name-sensitive).
#[derive(Clone, Debug)]
struct StructuralKey {
    name: String,
    text: Arc<str>,
}

/// Placeholder substituted for the function's own name (and self-calls) in
/// the normalized print that backs [`Function::structural_key`].
pub(crate) const STRUCTURAL_PLACEHOLDER: &str = "__odr_key__";

/// Structural-key cache counters, registered in the telemetry metrics
/// registry as `ssa_ir.structural_key.hits` / `.misses` so they share the
/// snapshot/delta/reset lifecycle of every other pipeline metric. Reports
/// snapshot them before and after a run and publish the delta as the cache
/// hit rate.
fn key_counters() -> &'static (telemetry::metrics::Counter, telemetry::metrics::Counter) {
    static COUNTERS: OnceLock<(telemetry::metrics::Counter, telemetry::metrics::Counter)> =
        OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            telemetry::registry().counter("ssa_ir.structural_key.hits"),
            telemetry::registry().counter("ssa_ir.structural_key.misses"),
        )
    })
}

/// Snapshot of the process-wide structural-key cache counters: `(hits,
/// misses)`, where a miss is a full normalized re-print of a function body.
/// Backed by the telemetry registry (`ssa_ir.structural_key.*`), so
/// `telemetry::registry().reset()` zeroes them between test runs.
pub fn structural_key_counters() -> (u64, u64) {
    let (hits, misses) = key_counters();
    (hits.get(), misses.get())
}

/// A function in SSA (or, transiently, non-SSA) form.
#[derive(Clone, Debug)]
pub struct Function {
    /// The symbol name of the function.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Optional parameter names used by the printer.
    pub param_names: Vec<String>,
    /// Return type.
    pub ret_ty: Type,
    /// Symbol linkage (external by default).
    pub linkage: Linkage,
    blocks: Arena<BlockId, BlockData>,
    insts: Arena<InstId, InstData>,
    block_order: Vec<BlockId>,
    entry: Option<BlockId>,
    /// Cached normalized print key; cleared by every mutating method.
    structural_cache: OnceLock<StructuralKey>,
    /// Opaque derived-analysis slot; cleared alongside the structural key.
    analysis_cache: AnalysisSlot,
}

/// Opaque, type-erased cache slot for per-function derived analyses.
///
/// Downstream crates (the alignment engine caches its interned
/// mergeability-class table here) store an `Arc<dyn Any>` they downcast on
/// retrieval. The slot follows the exact lifecycle of the structural key:
/// populated lazily through `&self`, shared by clones, and cleared by every
/// mutating method via [`Function::invalidate_structural_key`], so a stored
/// analysis can never outlive the body it was computed from.
#[derive(Clone, Default)]
struct AnalysisSlot(OnceLock<Arc<dyn Any + Send + Sync>>);

impl fmt::Debug for AnalysisSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.get().is_some() {
            "AnalysisSlot(set)"
        } else {
            "AnalysisSlot(empty)"
        })
    }
}

impl Function {
    /// Creates an empty function with the given signature.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret_ty: Type) -> Function {
        let params_len = params.len();
        Function {
            name: name.into(),
            params,
            param_names: (0..params_len).map(|i| format!("arg{i}")).collect(),
            ret_ty,
            linkage: Linkage::External,
            blocks: Arena::new(),
            insts: Arena::new(),
            block_order: Vec::new(),
            entry: None,
            structural_cache: OnceLock::new(),
            analysis_cache: AnalysisSlot::default(),
        }
    }

    /// Reads the opaque derived-analysis slot (see [`AnalysisSlot`]).
    ///
    /// Returns a clone of the stored `Arc`, or `None` when nothing has been
    /// cached since the last mutation. Callers downcast to their own table
    /// type and must treat a failed downcast like a miss (another analysis
    /// got the slot first).
    pub fn analysis_cache(&self) -> Option<Arc<dyn Any + Send + Sync>> {
        self.analysis_cache.0.get().cloned()
    }

    /// Stores a derived analysis in the opaque slot through `&self`.
    ///
    /// First write wins, mirroring `OnceLock::set`: if another analysis is
    /// already cached the call is a no-op and returns `false`. The slot is
    /// cleared by every mutating method, so stored values are only ever read
    /// against the body they were computed from.
    pub fn set_analysis_cache(&self, value: Arc<dyn Any + Send + Sync>) -> bool {
        self.analysis_cache.0.set(value).is_ok()
    }

    /// Clears the cached structural key. Every `&mut self` method that can
    /// change the printed form of the function calls this.
    ///
    /// Debug builds additionally catch the stale-rename footgun *at mutation
    /// time*: if the cached key was computed under a different symbol name,
    /// the function was renamed through a direct `name` field write (which
    /// cannot invalidate the cache) and has been carrying a stale key since.
    /// Release builds keep tolerating this — [`Function::structural_key`]
    /// detects the mismatch at lookup and recomputes — but the assert points
    /// straight at the offending write instead of at a much later lookup.
    fn invalidate_structural_key(&mut self) {
        #[cfg(debug_assertions)]
        if let Some(key) = self.structural_cache.get() {
            assert!(
                key.name == self.name,
                "stale structural key: function is named @{} but its cached key was \
                 computed for @{}; rename functions with Function::set_name, not by \
                 assigning the public `name` field",
                self.name,
                key.name
            );
        }
        self.structural_cache.take();
        self.analysis_cache.0.take();
    }

    /// Renames the function, invalidating the cached structural key (the key
    /// normalizes self-recursive calls by the current name, so a rename can
    /// change it). Prefer this over assigning the `name` field directly: a
    /// field write leaves a stale cache behind that every subsequent
    /// [`Function::structural_key`] lookup must detect and recompute around.
    pub fn set_name(&mut self, name: impl Into<String>) {
        // Invalidate under the *old* name: the debug-build stale-name assert
        // inside `invalidate_structural_key` compares the cached key against
        // the current name, so the order matters.
        self.invalidate_structural_key();
        self.name = name.into();
    }

    /// Sets the linkage, invalidating the cached structural key (linkage is
    /// part of the printed form).
    pub fn set_linkage(&mut self, linkage: Linkage) {
        self.linkage = linkage;
        self.invalidate_structural_key();
    }

    /// The name-independent structural key of the function: its printed form
    /// with the symbol name (and self-recursive calls) replaced by a fixed
    /// placeholder. Two functions are ODR-interchangeable exactly when their
    /// signatures and structural keys agree ([`crate::structurally_equal`]).
    ///
    /// The key is cached on first computation and invalidated by every
    /// mutating method, so repeated equality checks over an unchanged
    /// function — hazard scans, `link_modules`, ODR dedup — stop re-printing
    /// it. Clones share the cached key. A direct write to the public `name`
    /// field is detected at lookup (the key remembers the name it was
    /// computed under) and falls back to an uncached recompute.
    pub fn structural_key(&self) -> Arc<str> {
        if let Some(key) = self.structural_cache.get() {
            if key.name == self.name {
                key_counters().0.inc();
                return key.text.clone();
            }
            // Stale: the name was reassigned through the public field after
            // the key was computed. Recompute without caching (the slot is
            // already taken); `set_name` avoids this path.
            key_counters().1.inc();
            return crate::printer::print_function_normalized(self, STRUCTURAL_PLACEHOLDER).into();
        }
        key_counters().1.inc();
        let text: Arc<str> =
            crate::printer::print_function_normalized(self, STRUCTURAL_PLACEHOLDER).into();
        let _ = self.structural_cache.set(StructuralKey {
            name: self.name.clone(),
            text: text.clone(),
        });
        text
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been created yet.
    pub fn entry(&self) -> BlockId {
        self.entry.expect("function has no entry block")
    }

    /// Returns the entry block if one exists.
    pub fn try_entry(&self) -> Option<BlockId> {
        self.entry
    }

    /// Overrides the entry block.
    pub fn set_entry(&mut self, block: BlockId) {
        assert!(self.blocks.contains(block), "unknown block {block}");
        self.invalidate_structural_key();
        self.entry = Some(block);
    }

    /// Creates a new, empty basic block appended to the layout order. The
    /// first block created becomes the entry block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.invalidate_structural_key();
        let id = self.blocks.alloc(BlockData {
            name: name.into(),
            ..BlockData::default()
        });
        self.block_order.push(id);
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Removes a block and all of its instructions. The caller is responsible
    /// for ensuring no other block still branches to it.
    pub fn remove_block(&mut self, block: BlockId) {
        self.invalidate_structural_key();
        if let Some(data) = self.blocks.remove(block) {
            for inst in data.all_insts() {
                self.insts.remove(inst);
            }
            self.block_order.retain(|b| *b != block);
            if self.entry == Some(block) {
                self.entry = self.block_order.first().copied();
            }
        }
    }

    /// Returns a reference to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block has been removed.
    pub fn block(&self, id: BlockId) -> &BlockData {
        self.blocks
            .get(id)
            .unwrap_or_else(|| panic!("dangling block {id}"))
    }

    /// Returns a mutable reference to a block (conservatively invalidates the
    /// cached structural key).
    pub fn block_mut(&mut self, id: BlockId) -> &mut BlockData {
        self.invalidate_structural_key();
        self.blocks
            .get_mut(id)
            .unwrap_or_else(|| panic!("dangling block {id}"))
    }

    /// Returns `true` when the block id refers to a live block.
    pub fn contains_block(&self, id: BlockId) -> bool {
        self.blocks.contains(id)
    }

    /// Block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.block_order.iter().copied()
    }

    /// Number of live blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Returns a reference to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has been removed.
    pub fn inst(&self, id: InstId) -> &InstData {
        self.insts
            .get(id)
            .unwrap_or_else(|| panic!("dangling inst {id}"))
    }

    /// Returns a mutable reference to an instruction (conservatively
    /// invalidates the cached structural key).
    pub fn inst_mut(&mut self, id: InstId) -> &mut InstData {
        self.invalidate_structural_key();
        self.insts
            .get_mut(id)
            .unwrap_or_else(|| panic!("dangling inst {id}"))
    }

    /// Returns `true` when the instruction id refers to a live instruction.
    pub fn contains_inst(&self, id: InstId) -> bool {
        self.insts.contains(id)
    }

    /// All live instruction ids, in arena order (not program order).
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        self.insts.ids()
    }

    /// Appends an instruction of the given kind to `block` and returns its id.
    ///
    /// Phi-nodes are appended to the block's phi list, terminators set the
    /// block's terminator (panicking if one is already present), and everything
    /// else is appended to the ordinary instruction list.
    pub fn append_inst(&mut self, block: BlockId, kind: InstKind, ty: Type) -> InstId {
        self.invalidate_structural_key();
        let is_phi = kind.is_phi();
        let is_term = kind.is_terminator();
        let id = self.insts.alloc(InstData {
            kind,
            ty,
            block,
            name: None,
        });
        let data = self.block_mut(block);
        if is_phi {
            data.phis.push(id);
        } else if is_term {
            assert!(
                data.term.is_none(),
                "block {block} already has a terminator"
            );
            data.term = Some(id);
        } else {
            data.insts.push(id);
        }
        id
    }

    /// Inserts an ordinary instruction at position `index` of `block`'s body.
    pub fn insert_inst(
        &mut self,
        block: BlockId,
        index: usize,
        kind: InstKind,
        ty: Type,
    ) -> InstId {
        assert!(!kind.is_phi() && !kind.is_terminator());
        self.invalidate_structural_key();
        let id = self.insts.alloc(InstData {
            kind,
            ty,
            block,
            name: None,
        });
        self.block_mut(block).insts.insert(index, id);
        id
    }

    /// Removes an instruction from its block and from the arena.
    pub fn remove_inst(&mut self, id: InstId) {
        self.invalidate_structural_key();
        let block = self.inst(id).block;
        if self.blocks.contains(block) {
            let data = self.block_mut(block);
            data.phis.retain(|i| *i != id);
            data.insts.retain(|i| *i != id);
            if data.term == Some(id) {
                data.term = None;
            }
        }
        self.insts.remove(id);
    }

    /// Detaches the terminator of `block` (if any) and removes it.
    pub fn clear_terminator(&mut self, block: BlockId) {
        if let Some(term) = self.block(block).term {
            self.remove_inst(term);
        }
    }

    /// Sets the printer name of an instruction's result and returns the id,
    /// for fluent use in builders and tests.
    pub fn set_inst_name(&mut self, id: InstId, name: impl Into<String>) -> InstId {
        self.inst_mut(id).name = Some(name.into());
        id
    }

    /// The values of the formal parameters.
    pub fn arg_values(&self) -> Vec<Value> {
        (0..self.params.len() as u32).map(Value::Arg).collect()
    }

    /// The type of a value in the context of this function.
    ///
    /// # Panics
    ///
    /// Panics if the value is an argument index out of range or a removed
    /// instruction.
    pub fn value_type(&self, value: Value) -> Type {
        match value {
            Value::Inst(id) => self.inst(id).ty,
            Value::Arg(i) => self.params[i as usize],
            Value::Const(c) => c.ty(),
        }
    }

    /// Successor blocks of `block`, in terminator order. Blocks without a
    /// terminator have no successors.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.block(block).term {
            Some(term) => self.inst(term).kind.successors(),
            None => Vec::new(),
        }
    }

    /// Computes the predecessor map of the whole CFG. A block appears once per
    /// incoming edge (duplicates possible when a terminator lists the same
    /// successor twice).
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> =
            self.block_ids().map(|b| (b, Vec::new())).collect();
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds.entry(s).or_default().push(b);
            }
        }
        preds
    }

    /// Total number of instructions (phis + body + terminators) across all
    /// blocks. This is the "function size" metric used throughout the paper.
    pub fn num_insts(&self) -> usize {
        self.block_ids().map(|b| self.block(b).len()).sum()
    }

    /// Replaces every use of `from` with `to` in all instructions.
    /// Returns the number of operand slots rewritten.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) -> usize {
        let ids: Vec<InstId> = self.insts.ids().collect();
        let mut count = 0;
        for id in ids {
            count += self.inst_mut(id).kind.replace_value(from, to);
        }
        count
    }

    /// Returns the users (instructions that reference `value` as an operand).
    pub fn users_of(&self, value: Value) -> Vec<InstId> {
        let mut users = Vec::new();
        for (id, data) in self.insts.iter() {
            let mut found = false;
            data.kind.for_each_operand(|v| {
                if v == value {
                    found = true;
                }
            });
            if found {
                users.push(id);
            }
        }
        users
    }

    /// Rewrites every reference to block `from` (in terminators and phi
    /// incoming lists) to refer to `to`.
    pub fn replace_block_refs(&mut self, from: BlockId, to: BlockId) {
        let ids: Vec<InstId> = self.insts.ids().collect();
        for id in ids {
            self.inst_mut(id).kind.for_each_block_ref_mut(|b| {
                if *b == from {
                    *b = to;
                }
            });
        }
    }

    /// Blocks in reverse post-order from the entry block. Unreachable blocks
    /// are not included.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        let mut visited = std::collections::HashSet::new();
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack to survive deep CFGs.
        enum Frame {
            Enter(BlockId),
            Exit(BlockId),
        }
        let mut stack = vec![Frame::Enter(entry)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(b) => {
                    if !visited.insert(b) {
                        continue;
                    }
                    stack.push(Frame::Exit(b));
                    let succs = self.successors(b);
                    for s in succs.into_iter().rev() {
                        if !visited.contains(&s) {
                            stack.push(Frame::Enter(s));
                        }
                    }
                }
                Frame::Exit(b) => post.push(b),
            }
        }
        post.reverse();
        post
    }

    /// Blocks reachable from the entry.
    pub fn reachable_blocks(&self) -> std::collections::HashSet<BlockId> {
        self.reverse_post_order().into_iter().collect()
    }

    /// Looks up a block by label name.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.block_ids().find(|b| self.block(*b).name == name)
    }

    /// Finds the instruction whose printer name is `name`.
    pub fn inst_by_name(&self, name: &str) -> Option<InstId> {
        self.insts
            .iter()
            .find(|(_, d)| d.name.as_deref() == Some(name))
            .map(|(id, _)| id)
    }

    /// Moves `block` to the end of the layout order (used by code generators
    /// that want related blocks printed together).
    pub fn move_block_to_end(&mut self, block: BlockId) {
        self.invalidate_structural_key();
        self.block_order.retain(|b| *b != block);
        self.block_order.push(block);
    }

    /// The callee symbol of a call or invoke instruction, or `None` for any
    /// other instruction kind.
    pub fn call_target(&self, inst: InstId) -> Option<&str> {
        match &self.inst(inst).kind {
            InstKind::Call { callee, .. } | InstKind::Invoke { callee, .. } => Some(callee),
            _ => None,
        }
    }

    /// Iterates over every call/invoke site of the function as
    /// `(instruction, callee symbol)`, in arena order (not program order —
    /// static site *counts* are order-independent, which is all the
    /// call-graph layer needs).
    pub fn call_sites(&self) -> impl Iterator<Item = (InstId, &str)> + '_ {
        self.inst_ids()
            .filter_map(|inst| self.call_target(inst).map(|callee| (inst, callee)))
    }

    /// Static call-site counts per callee symbol: how many call/invoke
    /// instructions of this function target each symbol.
    pub fn callee_counts(&self) -> HashMap<String, u32> {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for (_, callee) in self.call_sites() {
            *counts.entry(callee.to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Rewrites call/invoke targets: `rename` is consulted per site and a
    /// `Some(new)` replaces the callee symbol. Returns the number of sites
    /// rewritten. The structural key is only invalidated when something
    /// actually changed.
    pub fn rewrite_call_targets(
        &mut self,
        mut rename: impl FnMut(&str) -> Option<String>,
    ) -> usize {
        let planned: Vec<(InstId, String)> = self
            .call_sites()
            .filter_map(|(inst, callee)| rename(callee).map(|to| (inst, to)))
            .collect();
        for (inst, to) in &planned {
            match &mut self.inst_mut(*inst).kind {
                InstKind::Call { callee, .. } | InstKind::Invoke { callee, .. } => {
                    *callee = to.clone();
                }
                _ => unreachable!("call_sites only yields calls and invokes"),
            }
        }
        planned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::BinOp;

    fn sample() -> Function {
        // define i32 @f(i32 %a, i32 %b) {
        // entry:
        //   %s = add i32 %a, %b
        //   br label %exit
        // exit:
        //   ret i32 %s
        // }
        let mut f = Function::new("f", vec![Type::I32, Type::I32], Type::I32);
        let entry = f.add_block("entry");
        let exit = f.add_block("exit");
        let s = f.append_inst(
            entry,
            InstKind::Binary {
                op: BinOp::Add,
                lhs: Value::Arg(0),
                rhs: Value::Arg(1),
            },
            Type::I32,
        );
        f.set_inst_name(s, "s");
        f.append_inst(entry, InstKind::Br { dest: exit }, Type::Void);
        f.append_inst(
            exit,
            InstKind::Ret {
                value: Some(Value::Inst(s)),
            },
            Type::Void,
        );
        f
    }

    #[test]
    fn block_and_inst_accounting() {
        let f = sample();
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.num_insts(), 3);
        let entry = f.entry();
        assert_eq!(f.block(entry).name, "entry");
        assert_eq!(f.successors(entry), vec![f.block_by_name("exit").unwrap()]);
    }

    #[test]
    fn predecessors_map() {
        let f = sample();
        let preds = f.predecessors();
        let exit = f.block_by_name("exit").unwrap();
        assert_eq!(preds[&exit], vec![f.entry()]);
        assert!(preds[&f.entry()].is_empty());
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = sample();
        let n = f.replace_all_uses(Value::Arg(0), Value::i32(7));
        assert_eq!(n, 1);
        let add = f.inst_by_name("s").unwrap();
        assert_eq!(f.inst(add).kind.operands()[0], Value::i32(7));
    }

    #[test]
    fn remove_inst_detaches_from_block() {
        let mut f = sample();
        let add = f.inst_by_name("s").unwrap();
        f.remove_inst(add);
        assert_eq!(f.num_insts(), 2);
        assert!(!f.contains_inst(add));
        assert!(f.block(f.entry()).insts.is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let mut f = sample();
        let dead = f.add_block("dead");
        f.append_inst(dead, InstKind::Unreachable, Type::Void);
        let rpo = f.reverse_post_order();
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 2);
        assert!(!rpo.contains(&dead));
    }

    #[test]
    fn value_types() {
        let f = sample();
        assert_eq!(f.value_type(Value::Arg(1)), Type::I32);
        assert_eq!(f.value_type(Value::bool(true)), Type::I1);
        let add = f.inst_by_name("s").unwrap();
        assert_eq!(f.value_type(Value::Inst(add)), Type::I32);
    }

    #[test]
    #[should_panic(expected = "already has a terminator")]
    fn double_terminator_panics() {
        let mut f = sample();
        let entry = f.entry();
        f.append_inst(entry, InstKind::Ret { value: None }, Type::Void);
    }

    #[test]
    fn users_of_finds_all_users() {
        let f = sample();
        let add = f.inst_by_name("s").unwrap();
        let users = f.users_of(Value::Inst(add));
        assert_eq!(users.len(), 1);
        assert!(f.inst(users[0]).kind.is_terminator());
    }

    #[test]
    fn remove_block_removes_instructions() {
        let mut f = sample();
        let exit = f.block_by_name("exit").unwrap();
        let count_before = f.num_insts();
        f.remove_block(exit);
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_insts(), count_before - 1);
    }

    /// The PR 3 footgun, caught at mutation time in debug builds: renaming a
    /// function by assigning the public `name` field leaves the cached
    /// structural key stale; the next mutating method asserts instead of the
    /// staleness surfacing at a much later `structural_key` lookup.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale structural key")]
    fn direct_name_write_followed_by_mutation_panics_in_debug() {
        let mut f = sample();
        let _ = f.structural_key(); // populate the cache
        f.name = "poked".to_string(); // the footgun: bypasses set_name
        f.set_entry(f.entry()); // any mutating method trips the assert
    }

    /// `set_name` stays safe: it invalidates under the old name, so the
    /// stale-name assert never fires and later mutations are clean.
    #[test]
    fn set_name_after_cached_key_is_clean() {
        let mut f = sample();
        let _ = f.structural_key();
        f.set_name("renamed");
        f.set_entry(f.entry()); // must not panic
        assert_eq!(f.name, "renamed");
        let _ = f.structural_key();
    }
}
