//! Entity identifiers and a small generic arena.
//!
//! Every [`crate::Function`] owns two arenas: one for basic blocks and one for
//! instructions. Entities are referenced by lightweight copyable ids
//! ([`BlockId`], [`InstId`]) so that the CFG can be freely mutated while other
//! data structures (alignments, mappings between input and merged functions)
//! hold stable references.

use std::fmt;

/// Trait implemented by all entity id types so they can index an [`Arena`].
pub trait EntityId: Copy + Eq + std::hash::Hash + fmt::Debug {
    /// Builds an id from a raw index.
    fn from_index(index: usize) -> Self;
    /// Returns the raw index of the id.
    fn index(self) -> usize;
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl EntityId for $name {
            fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "entity index overflow");
                $name(index as u32)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $name {
            /// Returns the raw numeric value of the id.
            pub fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifier of an instruction within a [`crate::Function`].
    InstId,
    "i"
);

/// A generation-free arena with tombstone removal.
///
/// Slots are never reused, which keeps ids stable for the lifetime of the
/// function and makes debugging merged-function provenance straightforward.
#[derive(Clone, Debug, Default)]
pub struct Arena<I, T> {
    slots: Vec<Option<T>>,
    live: usize,
    _marker: std::marker::PhantomData<I>,
}

impl<I: EntityId, T> Arena<I, T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            live: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Inserts a value and returns its id.
    pub fn alloc(&mut self, value: T) -> I {
        let id = I::from_index(self.slots.len());
        self.slots.push(Some(value));
        self.live += 1;
        id
    }

    /// Returns a reference to the value, if it is still live.
    pub fn get(&self, id: I) -> Option<&T> {
        self.slots.get(id.index()).and_then(|slot| slot.as_ref())
    }

    /// Returns a mutable reference to the value, if it is still live.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.slots
            .get_mut(id.index())
            .and_then(|slot| slot.as_mut())
    }

    /// Removes and returns the value stored under `id`.
    pub fn remove(&mut self, id: I) -> Option<T> {
        let slot = self.slots.get_mut(id.index())?;
        let taken = slot.take();
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    /// Returns `true` if `id` refers to a live entity.
    pub fn contains(&self, id: I) -> bool {
        self.get(id).is_some()
    }

    /// Number of live entities.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when the arena holds no live entities.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over `(id, &value)` pairs of live entities in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (I::from_index(i), v)))
    }

    /// Iterates over the ids of live entities in allocation order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|_| I::from_index(i)))
    }

    /// Total number of slots ever allocated (live + tombstones).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_remove_roundtrip() {
        let mut arena: Arena<InstId, &'static str> = Arena::new();
        let a = arena.alloc("a");
        let b = arena.alloc("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&"a"));
        assert_eq!(arena.get(b), Some(&"b"));
        assert_eq!(arena.remove(a), Some("a"));
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.len(), 1);
        assert!(!arena.contains(a));
        assert!(arena.contains(b));
    }

    #[test]
    fn ids_are_stable_after_removal() {
        let mut arena: Arena<BlockId, u32> = Arena::new();
        let ids: Vec<_> = (0..10).map(|i| arena.alloc(i)).collect();
        arena.remove(ids[3]);
        arena.remove(ids[7]);
        let live: Vec<_> = arena.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        // New allocations never reuse a tombstoned index.
        let fresh = arena.alloc(99);
        assert_eq!(fresh.index(), 10);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(format!("{}", BlockId::from_index(4)), "bb4");
        assert_eq!(format!("{}", InstId::from_index(2)), "i2");
    }
}
