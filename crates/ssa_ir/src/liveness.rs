//! Block-level liveness analysis.
//!
//! Used by the phi-node coalescing heuristic (to reason about live-range
//! overlap of disjoint definitions) and by the register-pressure statistics
//! reported alongside the code-size results.

use crate::function::Function;
use crate::ids::{BlockId, InstId};
use crate::instruction::InstKind;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Live-in/live-out sets of every block, over instruction-result values.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    /// Values live at the entry of each block.
    pub live_in: HashMap<BlockId, HashSet<InstId>>,
    /// Values live at the exit of each block.
    pub live_out: HashMap<BlockId, HashSet<InstId>>,
}

impl Liveness {
    /// Computes liveness with a standard backward fixed-point iteration.
    ///
    /// Phi-node operands are treated as live-out of the corresponding
    /// predecessor (not live-in of the phi's block), matching the usual SSA
    /// convention.
    pub fn compute(function: &Function) -> Liveness {
        // Per-block use/def sets.
        let blocks: Vec<BlockId> = function.block_ids().collect();
        let mut defs: HashMap<BlockId, HashSet<InstId>> = HashMap::new();
        let mut uses: HashMap<BlockId, HashSet<InstId>> = HashMap::new();
        // Uses injected into a *predecessor's* live-out by phi-nodes.
        let mut phi_uses: HashMap<BlockId, HashSet<InstId>> = HashMap::new();

        for &b in &blocks {
            let mut def_set = HashSet::new();
            let mut use_set = HashSet::new();
            let data = function.block(b);
            for inst in data.all_insts() {
                let inst_data = function.inst(inst);
                match &inst_data.kind {
                    InstKind::Phi { incomings } => {
                        for (v, pred) in incomings {
                            if let Value::Inst(d) = v {
                                phi_uses.entry(*pred).or_default().insert(*d);
                            }
                        }
                    }
                    kind => {
                        kind.for_each_operand(|v| {
                            if let Value::Inst(d) = v {
                                if !def_set.contains(&d) {
                                    use_set.insert(d);
                                }
                            }
                        });
                    }
                }
                if inst_data.ty.is_first_class() {
                    def_set.insert(inst);
                }
            }
            defs.insert(b, def_set);
            uses.insert(b, use_set);
        }

        let mut live_in: HashMap<BlockId, HashSet<InstId>> =
            blocks.iter().map(|b| (*b, HashSet::new())).collect();
        let mut live_out: HashMap<BlockId, HashSet<InstId>> =
            blocks.iter().map(|b| (*b, HashSet::new())).collect();

        let mut changed = true;
        while changed {
            changed = false;
            for &b in blocks.iter().rev() {
                let mut out: HashSet<InstId> = phi_uses.get(&b).cloned().unwrap_or_default();
                for succ in function.successors(b) {
                    if let Some(s_in) = live_in.get(&succ) {
                        out.extend(s_in.iter().copied());
                    }
                }
                let mut inp: HashSet<InstId> = uses[&b].clone();
                for &v in &out {
                    if !defs[&b].contains(&v) {
                        inp.insert(v);
                    }
                }
                if out != live_out[&b] {
                    live_out.insert(b, out);
                    changed = true;
                }
                if inp != live_in[&b] {
                    live_in.insert(b, inp);
                    changed = true;
                }
            }
        }

        Liveness { live_in, live_out }
    }

    /// Maximum number of simultaneously live values at any block boundary — a
    /// cheap proxy for register pressure.
    pub fn max_pressure(&self) -> usize {
        self.live_in
            .values()
            .chain(self.live_out.values())
            .map(HashSet::len)
            .max()
            .unwrap_or(0)
    }

    /// The set of blocks through which `value` is live (live-in or live-out).
    pub fn live_blocks(&self, value: InstId) -> HashSet<BlockId> {
        let mut out = HashSet::new();
        for (b, s) in &self.live_in {
            if s.contains(&value) {
                out.insert(*b);
            }
        }
        for (b, s) in &self.live_out {
            if s.contains(&value) {
                out.insert(*b);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::{BinOp, ICmpPred};
    use crate::types::Type;

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let exit = b.create_block("exit");
        b.switch_to(entry);
        let x = b.binary(BinOp::Add, Value::Arg(0), Value::i32(1));
        b.br(exit);
        b.switch_to(exit);
        let y = b.binary(BinOp::Mul, x, Value::i32(2));
        b.ret(Some(y));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        let xid = x.as_inst().unwrap();
        assert!(lv.live_out[&entry].contains(&xid));
        assert!(lv.live_in[&exit].contains(&xid));
        assert!(!lv.live_in[&entry].contains(&xid));
    }

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        // entry -> header; header -> body -> header; header -> exit
        let mut b = FunctionBuilder::new("loop", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.switch_to(entry);
        let init = b.binary(BinOp::Add, Value::Arg(0), Value::i32(0));
        b.br(header);
        b.switch_to(header);
        let phi = b.phi(Type::I32, vec![(init, entry), (Value::i32(0), body)]);
        let c = b.icmp(ICmpPred::Slt, phi, Value::i32(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let next = b.binary(BinOp::Add, phi, Value::i32(1));
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(next));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        let next_id = next.as_inst().unwrap();
        // `next` is used in `exit`, so it must be live out of `header` and `body`.
        assert!(lv.live_in[&exit].contains(&next_id));
        assert!(lv.live_out[&header].contains(&next_id));
        let phi_id = phi.as_inst().unwrap();
        assert!(lv.live_in[&body].contains(&phi_id));
        assert!(lv.max_pressure() >= 1);
    }

    #[test]
    fn phi_operand_counts_as_pred_live_out() {
        let mut b = FunctionBuilder::new("phi", vec![Type::I1, Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.switch_to(entry);
        b.cond_br(Value::Arg(0), t, e);
        b.switch_to(t);
        let a = b.binary(BinOp::Add, Value::Arg(1), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        let s = b.binary(BinOp::Sub, Value::Arg(1), Value::i32(1));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(a, t), (s, e)]);
        b.ret(Some(p));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        assert!(lv.live_out[&t].contains(&a.as_inst().unwrap()));
        assert!(lv.live_out[&e].contains(&s.as_inst().unwrap()));
        // But phi operands are NOT live-in of the join block.
        assert!(!lv.live_in[&j].contains(&a.as_inst().unwrap()));
        assert_eq!(lv.live_blocks(a.as_inst().unwrap()).len(), 1);
    }
}
