//! IR verifier: structural well-formedness, type rules, CFG and SSA
//! (dominance) properties.
//!
//! Every merged function produced by the FMSA baseline or by SalSSA is run
//! through this verifier in the test suites; a verifier failure means the
//! merge produced ill-formed code.

use crate::dominators::DomTree;
use crate::function::Function;
use crate::ids::{BlockId, InstId};
use crate::instruction::{BinOp, InstKind};
use crate::module::Module;
use crate::printer::Namer;
use crate::types::Type;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// Stable diagnostic codes assigned to verifier failures. The `analysis`
/// crate re-exports these as part of its documented code table, so the
/// mapping from check to code is append-only: add codes, never renumber.
pub mod codes {
    /// Function has no entry block.
    pub const NO_ENTRY: &str = "E001";
    /// Malformed CFG structure: entry predecessors/phis, missing
    /// terminators, stale instruction or block references, misplaced phis
    /// or terminators.
    pub const CFG: &str = "E002";
    /// Instruction type-rule violation.
    pub const TYPES: &str = "E003";
    /// Instruction operand references a dangling value.
    pub const DANGLING_VALUE: &str = "E004";
    /// Phi incoming edges disagree with the block's predecessors.
    pub const PHI: &str = "E005";
    /// Landing-pad placement rules violated.
    pub const LANDING_PAD: &str = "E006";
    /// SSA dominance violation.
    pub const DOMINANCE: &str = "E007";
}

/// A single verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function in which the problem was found.
    pub function: String,
    /// The module the function came from; empty when the function was
    /// verified standalone ([`verify_function`] has no module context —
    /// [`verify_module`] fills this in).
    pub module: String,
    /// Stable diagnostic code (see [`codes`]).
    pub code: &'static str,
    /// Description of the problem, including the offending entity.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.module.is_empty() {
            write!(f, "verifier: in @{}: {}", self.function, self.message)
        } else {
            write!(
                f,
                "verifier: in {}: @{}: {}",
                self.module, self.function, self.message
            )
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies an entire module. Returns all problems found, each carrying the
/// module name as provenance.
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for f in module.functions() {
        errors.extend(verify_function(f).into_iter().map(|mut e| {
            e.module = module.name.clone();
            e
        }));
    }
    errors
}

/// Verifies a single function. Returns all problems found (empty = valid).
pub fn verify_function(function: &Function) -> Vec<VerifyError> {
    let mut v = Verifier {
        function,
        namer: Namer::new(function),
        errors: Vec::new(),
    };
    v.run();
    v.errors
}

/// Convenience wrapper that panics with a readable report when verification
/// fails; used liberally in tests.
///
/// # Panics
///
/// Panics if the function is not well-formed.
pub fn assert_valid(function: &Function) {
    let errors = verify_function(function);
    if !errors.is_empty() {
        let report: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        panic!(
            "function @{} failed verification:\n{}\n\n{}",
            function.name,
            report.join("\n"),
            crate::printer::print_function(function)
        );
    }
}

struct Verifier<'a> {
    function: &'a Function,
    namer: Namer,
    errors: Vec<VerifyError>,
}

impl<'a> Verifier<'a> {
    fn error(&mut self, code: &'static str, message: String) {
        self.errors.push(VerifyError {
            function: self.function.name.clone(),
            module: String::new(),
            code,
            message,
        });
    }

    fn run(&mut self) {
        if self.function.try_entry().is_none() {
            self.error(codes::NO_ENTRY, "function has no entry block".into());
            return;
        }
        self.check_blocks();
        self.check_instructions();
        self.check_phis();
        self.check_landing_pads();
        self.check_dominance();
    }

    fn check_blocks(&mut self) {
        let entry = self.function.entry();
        let preds = self.function.predecessors();
        if !preds.get(&entry).map(Vec::is_empty).unwrap_or(true) {
            self.error(codes::CFG, "entry block must not have predecessors".into());
        }
        if !self.function.block(entry).phis.is_empty() {
            self.error(codes::CFG, "entry block must not contain phi-nodes".into());
        }
        for block in self.function.block_ids() {
            let data = self.function.block(block);
            if data.term.is_none() {
                self.error(
                    codes::CFG,
                    format!("block %{} has no terminator", self.namer.block_name(block)),
                );
            }
            for inst in data.all_insts() {
                if !self.function.contains_inst(inst) {
                    self.error(
                        codes::CFG,
                        format!(
                            "block %{} references a removed instruction",
                            self.namer.block_name(block)
                        ),
                    );
                    continue;
                }
                if self.function.inst(inst).block != block {
                    self.error(
                        codes::CFG,
                        format!(
                            "instruction %{} parent pointer disagrees with its containing block",
                            self.namer.inst_name(inst)
                        ),
                    );
                }
            }
            for &phi in &data.phis {
                if self.function.contains_inst(phi) && !self.function.inst(phi).kind.is_phi() {
                    self.error(
                        codes::CFG,
                        format!(
                            "non-phi instruction %{} stored in phi list of %{}",
                            self.namer.inst_name(phi),
                            self.namer.block_name(block)
                        ),
                    );
                }
            }
            for &inst in &data.insts {
                if !self.function.contains_inst(inst) {
                    continue;
                }
                let kind = &self.function.inst(inst).kind;
                if kind.is_phi() || kind.is_terminator() {
                    self.error(
                        codes::CFG,
                        format!(
                            "phi or terminator stored in the body of %{}",
                            self.namer.block_name(block)
                        ),
                    );
                }
            }
            if let Some(term) = data.term {
                if self.function.contains_inst(term)
                    && !self.function.inst(term).kind.is_terminator()
                {
                    self.error(
                        codes::CFG,
                        format!(
                            "terminator slot of %{} holds a non-terminator",
                            self.namer.block_name(block)
                        ),
                    );
                }
            }
        }
        // Successor references must point at live blocks.
        for block in self.function.block_ids() {
            for succ in self.function.successors(block) {
                if !self.function.contains_block(succ) {
                    self.error(
                        codes::CFG,
                        format!(
                            "%{} branches to a removed block",
                            self.namer.block_name(block)
                        ),
                    );
                }
            }
        }
    }

    fn check_instructions(&mut self) {
        for block in self.function.block_ids() {
            for inst in self.function.block(block).all_insts() {
                if !self.function.contains_inst(inst) {
                    continue;
                }
                self.check_inst_types(inst);
                self.check_operands_exist(inst);
            }
        }
    }

    fn value_exists(&self, value: Value) -> bool {
        match value {
            Value::Inst(id) => self.function.contains_inst(id),
            Value::Arg(i) => (i as usize) < self.function.params.len(),
            Value::Const(_) => true,
        }
    }

    fn check_operands_exist(&mut self, inst: InstId) {
        let data = self.function.inst(inst);
        let mut bad = Vec::new();
        data.kind.for_each_operand(|v| {
            if !self.value_exists(v) {
                bad.push(v);
            }
        });
        for v in bad {
            self.error(
                codes::DANGLING_VALUE,
                format!(
                    "instruction %{} uses a dangling value {v:?}",
                    self.namer.inst_name(inst)
                ),
            );
        }
    }

    fn check_inst_types(&mut self, inst: InstId) {
        let data = self.function.inst(inst);
        let ty_of = |v: Value| self.function.value_type(v);
        let mut problems: Vec<String> = Vec::new();
        match &data.kind {
            InstKind::Binary { op, lhs, rhs } => {
                if !self.value_exists(*lhs) || !self.value_exists(*rhs) {
                    return;
                }
                let lt = ty_of(*lhs);
                let rt = ty_of(*rhs);
                if lt != rt {
                    problems.push(format!("binary operand types differ ({lt} vs {rt})"));
                }
                if data.ty != lt {
                    problems.push(format!(
                        "binary result type {} differs from operand type {lt}",
                        data.ty
                    ));
                }
                let float_op = op.is_float();
                if float_op && !lt.is_float() {
                    problems.push(format!("float operator {op} applied to {lt}"));
                }
                if !float_op && !lt.is_int() {
                    problems.push(format!("integer operator {op} applied to {lt}"));
                }
            }
            InstKind::ICmp { lhs, rhs, .. } => {
                if self.value_exists(*lhs) && self.value_exists(*rhs) {
                    let lt = ty_of(*lhs);
                    let rt = ty_of(*rhs);
                    if lt != rt {
                        problems.push(format!("icmp operand types differ ({lt} vs {rt})"));
                    }
                    if !(lt.is_int() || lt.is_ptr()) {
                        problems.push(format!("icmp applied to {lt}"));
                    }
                }
                if data.ty != Type::I1 {
                    problems.push("icmp must produce i1".into());
                }
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                if self.value_exists(*cond) && ty_of(*cond) != Type::I1 {
                    problems.push("select condition must be i1".into());
                }
                if self.value_exists(*if_true)
                    && self.value_exists(*if_false)
                    && ty_of(*if_true) != ty_of(*if_false)
                {
                    problems.push("select arms have different types".into());
                }
                if self.value_exists(*if_true) && data.ty != ty_of(*if_true) {
                    problems.push("select result type differs from its arms".into());
                }
            }
            InstKind::Load { ptr } => {
                if self.value_exists(*ptr) && !ty_of(*ptr).is_ptr() {
                    problems.push("load pointer operand is not a pointer".into());
                }
                if !data.ty.is_first_class() {
                    problems.push("load must produce a value".into());
                }
            }
            InstKind::Store { ptr, .. } => {
                if self.value_exists(*ptr) && !ty_of(*ptr).is_ptr() {
                    problems.push("store pointer operand is not a pointer".into());
                }
                if data.ty != Type::Void {
                    problems.push("store produces no value".into());
                }
            }
            InstKind::Gep { base, index, .. } => {
                if self.value_exists(*base) && !ty_of(*base).is_ptr() {
                    problems.push("gep base must be a pointer".into());
                }
                if self.value_exists(*index) && !ty_of(*index).is_int() {
                    problems.push("gep index must be an integer".into());
                }
            }
            InstKind::Alloca { .. } if data.ty != Type::Ptr => {
                problems.push("alloca must produce a pointer".into());
            }
            InstKind::CondBr { cond, .. }
                if self.value_exists(*cond) && ty_of(*cond) != Type::I1 =>
            {
                problems.push("conditional branch condition must be i1".into());
            }
            InstKind::Switch { value, .. }
                if self.value_exists(*value) && !ty_of(*value).is_int() =>
            {
                problems.push("switch value must be an integer".into());
            }
            InstKind::Ret { value } => match value {
                Some(v) => {
                    if self.function.ret_ty == Type::Void {
                        problems.push("void function returns a value".into());
                    } else if self.value_exists(*v) && ty_of(*v) != self.function.ret_ty {
                        problems.push(format!(
                            "return type mismatch: returns {} but function returns {}",
                            ty_of(*v),
                            self.function.ret_ty
                        ));
                    }
                }
                None => {
                    if self.function.ret_ty != Type::Void {
                        problems.push("non-void function returns void".into());
                    }
                }
            },
            InstKind::Phi { incomings } => {
                for (v, _) in incomings {
                    if self.value_exists(*v) && !v.is_undef() && ty_of(*v) != data.ty {
                        problems.push(format!(
                            "phi incoming value type {} differs from phi type {}",
                            ty_of(*v),
                            data.ty
                        ));
                    }
                }
            }
            // Also reached by the guarded Alloca/CondBr/Switch arms above
            // when their type rule holds — this arm must stay empty; add new
            // checks for those kinds inside their guards, not here.
            _ => {}
        }
        // `xor` on booleans is used by the xor-branch optimization; every other
        // type rule is covered above. No additional checks needed here, but we
        // keep the arm to document the intent.
        if let InstKind::Binary { op: BinOp::Xor, .. } = &data.kind {}
        for p in problems {
            self.error(
                codes::TYPES,
                format!("%{}: {}", self.namer.inst_name(inst), p),
            );
        }
    }

    fn check_phis(&mut self) {
        let preds = self.function.predecessors();
        for block in self.function.block_ids() {
            let expected: HashSet<BlockId> = preds
                .get(&block)
                .map(|v| v.iter().copied().collect())
                .unwrap_or_default();
            for &phi in &self.function.block(block).phis {
                if !self.function.contains_inst(phi) {
                    continue;
                }
                let InstKind::Phi { incomings } = &self.function.inst(phi).kind else {
                    continue;
                };
                let mut seen: HashSet<BlockId> = HashSet::new();
                for (_, pred) in incomings {
                    if !seen.insert(*pred) {
                        self.error(
                            codes::PHI,
                            format!(
                                "phi %{} lists predecessor %{} twice",
                                self.namer.inst_name(phi),
                                self.namer.block_name(*pred)
                            ),
                        );
                    }
                    if !expected.contains(pred) {
                        self.error(codes::PHI, format!(
                            "phi %{} has an incoming edge from %{} which is not a predecessor of %{}",
                            self.namer.inst_name(phi),
                            self.namer.block_name(*pred),
                            self.namer.block_name(block)
                        ));
                    }
                }
                for pred in &expected {
                    if !seen.contains(pred) {
                        self.error(
                            codes::PHI,
                            format!(
                                "phi %{} is missing an incoming value for predecessor %{}",
                                self.namer.inst_name(phi),
                                self.namer.block_name(*pred)
                            ),
                        );
                    }
                }
            }
        }
    }

    fn check_landing_pads(&mut self) {
        // A landing pad must be the first non-phi instruction of its block and
        // that block must be the unwind destination of at least one invoke.
        let mut unwind_dests: HashSet<BlockId> = HashSet::new();
        for block in self.function.block_ids() {
            if let Some(term) = self.function.block(block).term {
                if let InstKind::Invoke { unwind, .. } = &self.function.inst(term).kind {
                    unwind_dests.insert(*unwind);
                }
            }
        }
        for block in self.function.block_ids() {
            let data = self.function.block(block);
            for (pos, &inst) in data.insts.iter().enumerate() {
                if !self.function.contains_inst(inst) {
                    continue;
                }
                if matches!(self.function.inst(inst).kind, InstKind::LandingPad) {
                    if pos != 0 {
                        self.error(
                            codes::LANDING_PAD,
                            format!(
                                "landingpad %{} is not the first non-phi instruction of %{}",
                                self.namer.inst_name(inst),
                                self.namer.block_name(block)
                            ),
                        );
                    }
                    if !unwind_dests.contains(&block) {
                        self.error(
                            codes::LANDING_PAD,
                            format!(
                                "landingpad block %{} is not the unwind destination of any invoke",
                                self.namer.block_name(block)
                            ),
                        );
                    }
                }
            }
        }
        // Conversely, unwind destinations must start with a landing pad.
        for block in unwind_dests {
            if !self.function.contains_block(block) {
                continue;
            }
            let data = self.function.block(block);
            let first_ok = data
                .insts
                .first()
                .map(|i| matches!(self.function.inst(*i).kind, InstKind::LandingPad))
                .unwrap_or(false);
            if !first_ok {
                self.error(
                    codes::LANDING_PAD,
                    format!(
                        "unwind destination %{} does not start with a landingpad",
                        self.namer.block_name(block)
                    ),
                );
            }
        }
    }

    fn check_dominance(&mut self) {
        let domtree = DomTree::compute(self.function);
        let preds = self.function.predecessors();
        for block in self.function.block_ids() {
            if !domtree.is_reachable(block) {
                continue;
            }
            let data = self.function.block(block);
            for inst in data.all_insts().collect::<Vec<_>>() {
                if !self.function.contains_inst(inst) {
                    continue;
                }
                let kind = self.function.inst(inst).kind.clone();
                if let InstKind::Phi { incomings } = &kind {
                    for (value, pred) in incomings {
                        if let Value::Inst(def) = value {
                            if !self.function.contains_inst(*def) {
                                continue;
                            }
                            // A phi use happens at the end of the predecessor.
                            if domtree.is_reachable(*pred)
                                && !domtree.def_dominates_use(self.function, *def, inst, *pred)
                                && self.function.inst(*def).block != *pred
                            {
                                let db = self.function.inst(*def).block;
                                if !domtree.dominates(db, *pred) {
                                    self.error(codes::DOMINANCE, format!(
                                        "phi %{} incoming value %{} does not dominate predecessor %{}",
                                        self.namer.inst_name(inst),
                                        self.namer.inst_name(*def),
                                        self.namer.block_name(*pred)
                                    ));
                                }
                            }
                        }
                    }
                } else {
                    let mut used = Vec::new();
                    kind.for_each_operand(|v| {
                        if let Value::Inst(def) = v {
                            used.push(def);
                        }
                    });
                    for def in used {
                        if !self.function.contains_inst(def) {
                            continue;
                        }
                        if !domtree.def_dominates_use(self.function, def, inst, block) {
                            self.error(
                                codes::DOMINANCE,
                                format!(
                                "use of %{} in %{} (block %{}) is not dominated by its definition",
                                self.namer.inst_name(def),
                                self.namer.inst_name(inst),
                                self.namer.block_name(block)
                            ),
                            );
                        }
                    }
                }
            }
            let _ = &preds;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::{BinOp, ICmpPred};

    fn valid_diamond() -> Function {
        let mut b = FunctionBuilder::new("ok", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.switch_to(entry);
        let c = b.icmp(ICmpPred::Sgt, Value::Arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let a = b.binary(BinOp::Add, Value::Arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        let s = b.binary(BinOp::Sub, Value::Arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(a, t), (s, e)]);
        b.ret(Some(p));
        b.finish()
    }

    #[test]
    fn valid_function_passes() {
        assert!(verify_function(&valid_diamond()).is_empty());
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut f = Function::new("f", vec![], Type::Void);
        f.add_block("entry");
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.message.contains("no terminator")));
    }

    #[test]
    fn phi_missing_incoming_is_reported() {
        let mut f = valid_diamond();
        let j = f.block_by_name("j").unwrap();
        let phi = f.block(j).phis[0];
        if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
            incomings.pop();
        }
        let errs = verify_function(&f);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("missing an incoming value")));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        b.switch_to(entry);
        let v = b.binary(BinOp::Add, Value::Arg(0), Value::i64(1));
        b.ret(Some(v));
        let errs = verify_function(&b.finish());
        assert!(errs
            .iter()
            .any(|e| e.message.contains("operand types differ")));
    }

    #[test]
    fn dominance_violation_is_reported() {
        // Use a value defined in a non-dominating sibling branch.
        let mut b = FunctionBuilder::new("dom", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.switch_to(entry);
        let c = b.icmp(ICmpPred::Sgt, Value::Arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let a = b.binary(BinOp::Add, Value::Arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        // Direct use of `a` here violates dominance (path through `e`).
        let bad = b.binary(BinOp::Mul, a, Value::i32(2));
        b.ret(Some(bad));
        let errs = verify_function(&b.finish());
        assert!(errs.iter().any(|e| e.message.contains("not dominated")));
    }

    #[test]
    fn ret_type_mismatch_is_reported() {
        let mut b = FunctionBuilder::new("retbad", vec![], Type::I32);
        let entry = b.create_block("entry");
        b.switch_to(entry);
        b.ret(None);
        let errs = verify_function(&b.finish());
        assert!(errs.iter().any(|e| e.message.contains("returns void")));
    }

    #[test]
    fn entry_with_phi_is_reported() {
        let mut f = Function::new("f", vec![Type::I32], Type::I32);
        let entry = f.add_block("entry");
        f.append_inst(entry, InstKind::Phi { incomings: vec![] }, Type::I32);
        f.append_inst(
            entry,
            InstKind::Ret {
                value: Some(Value::Arg(0)),
            },
            Type::Void,
        );
        let errs = verify_function(&f);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("entry block must not contain phi")));
    }

    #[test]
    fn landingpad_rules() {
        // Landing pad in a block that is not an unwind destination.
        let mut b = FunctionBuilder::new("lp", vec![], Type::Void);
        let entry = b.create_block("entry");
        b.switch_to(entry);
        b.landing_pad();
        b.ret(None);
        let errs = verify_function(&b.finish());
        assert!(errs
            .iter()
            .any(|e| e.message.contains("not the unwind destination")));
    }

    #[test]
    fn module_verification_aggregates_function_errors() {
        let mut m = Module::new("m");
        m.add_function(valid_diamond());
        let mut bad = Function::new("bad", vec![], Type::Void);
        bad.add_block("entry");
        m.add_function(bad);
        let errs = verify_module(&m);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].function, "bad");
    }
}
