//! Module linking: symbol renaming, cross-module function import with
//! ODR-style deduplication, and whole-program linking.
//!
//! The cross-module merging subsystem (the `xmerge` crate) discovers similar
//! functions across translation units and merges them with the existing
//! pairwise machinery — which operates within one module. This module provides
//! the glue: importing a donor function into a host module (renaming on
//! collision, deduplicating ODR-identical definitions), rewriting call sites
//! when a symbol is renamed, and producing a linked whole-program view of a
//! corpus for differential semantic checking.

use crate::function::Function;
use crate::instruction::InstKind;
use crate::module::{FuncDecl, Module};
use crate::printer::print_function;
use std::collections::HashSet;
use std::fmt;

/// Errors produced by linking operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The requested symbol does not exist in the source module.
    UnknownSymbol(String),
    /// The target name of a rename is already taken.
    Collision(String),
    /// Two modules define the same symbol with different bodies (an ODR
    /// violation — the program has no well-defined link result).
    DuplicateSymbol(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::UnknownSymbol(s) => write!(f, "unknown symbol @{s}"),
            LinkError::Collision(s) => write!(f, "symbol @{s} already exists"),
            LinkError::DuplicateSymbol(s) => {
                write!(f, "duplicate symbol @{s} with differing definitions")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Returns `true` when two functions have identical bodies modulo their own
/// symbol name (the ODR criterion used for deduplication): same signature and
/// the same printed body after normalizing the function name. Self-recursive
/// calls are compared through the normalized name, so two mutually-independent
/// recursive clones compare equal.
pub fn structurally_equal(a: &Function, b: &Function) -> bool {
    if a.params != b.params || a.ret_ty != b.ret_ty {
        return false;
    }
    normalized_print(a) == normalized_print(b)
}

/// Prints a function with its own name (and self-calls) replaced by a fixed
/// placeholder, producing a name-independent structural key.
fn normalized_print(f: &Function) -> String {
    let mut clone = f.clone();
    let original = clone.name.clone();
    clone.name = "__odr_key__".to_string();
    for inst in clone.inst_ids().collect::<Vec<_>>() {
        match &mut clone.inst_mut(inst).kind {
            InstKind::Call { callee, .. } | InstKind::Invoke { callee, .. }
                if *callee == original =>
            {
                *callee = "__odr_key__".to_string();
            }
            _ => {}
        }
    }
    print_function(&clone)
}

/// The set of function symbols a function references through calls or invokes.
pub fn callees_of(f: &Function) -> HashSet<String> {
    let mut out = HashSet::new();
    for inst in f.inst_ids() {
        match &f.inst(inst).kind {
            InstKind::Call { callee, .. } | InstKind::Invoke { callee, .. } => {
                out.insert(callee.clone());
            }
            _ => {}
        }
    }
    out
}

/// Renames the symbol `from` to `to` across the whole module: the definition
/// (or declaration) itself and every call site referencing it. Returns the
/// number of call sites rewritten.
///
/// # Errors
///
/// [`LinkError::UnknownSymbol`] when nothing named `from` exists, and
/// [`LinkError::Collision`] when `to` is already defined or declared.
pub fn rename_symbol(module: &mut Module, from: &str, to: &str) -> Result<usize, LinkError> {
    if from == to {
        return Ok(0);
    }
    if module.function(to).is_some() || module.declarations().iter().any(|d| d.name == to) {
        return Err(LinkError::Collision(to.to_string()));
    }
    let mut found = false;
    if let Some(f) = module.function_mut(from) {
        f.name = to.to_string();
        found = true;
    }
    while let Some(mut decl) = module.remove_declaration(from) {
        decl.name = to.to_string();
        module.declare(decl);
        found = true;
    }
    if !found {
        return Err(LinkError::UnknownSymbol(from.to_string()));
    }
    let mut sites = 0usize;
    for f in module.functions_mut() {
        for inst in f.inst_ids().collect::<Vec<_>>() {
            match &mut f.inst_mut(inst).kind {
                InstKind::Call { callee, .. } | InstKind::Invoke { callee, .. }
                    if callee == from =>
                {
                    *callee = to.to_string();
                    sites += 1;
                }
                _ => {}
            }
        }
    }
    Ok(sites)
}

/// The result of importing a function into a host module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportOutcome {
    /// The name the function has in the host module after the import (differs
    /// from the donor name when a collision forced a rename).
    pub name: String,
    /// `true` when the host already held a structurally identical definition
    /// and nothing was copied (ODR deduplication).
    pub deduped: bool,
}

/// Copies the definition of `name` from `donor` into `host`.
///
/// - If the host already defines a structurally identical function of the same
///   name, nothing is copied (`deduped = true`) — the ThinLTO/ODR folding case.
/// - If the host defines a *different* function of the same name, the imported
///   copy is renamed to `<name>.xm.<donor-module>` (with a numeric suffix if
///   even that collides); self-recursive calls follow the rename.
/// - Callees of the imported function that are unknown to the host but have a
///   known signature in the donor are added as external declarations, so the
///   host module keeps resolving signatures after the import.
///
/// # Errors
///
/// [`LinkError::UnknownSymbol`] when the donor has no definition of `name`.
pub fn import_function(
    host: &mut Module,
    donor: &Module,
    name: &str,
) -> Result<ImportOutcome, LinkError> {
    let function = donor
        .function(name)
        .ok_or_else(|| LinkError::UnknownSymbol(name.to_string()))?;
    if let Some(existing) = host.function(name) {
        if structurally_equal(existing, function) {
            return Ok(ImportOutcome {
                name: name.to_string(),
                deduped: true,
            });
        }
    }
    let mut copy = function.clone();
    let import_name = if host.function(name).is_none() {
        name.to_string()
    } else {
        let base = format!("{}.xm.{}", name, sanitize_symbol(&donor.name));
        let mut candidate = base.clone();
        let mut n = 1usize;
        while host.function(&candidate).is_some() {
            candidate = format!("{base}.{n}");
            n += 1;
        }
        candidate
    };
    if import_name != copy.name {
        // Keep self-recursion pointing at the imported copy, not at the
        // host's unrelated function of the original name.
        let original = copy.name.clone();
        for inst in copy.inst_ids().collect::<Vec<_>>() {
            match &mut copy.inst_mut(inst).kind {
                InstKind::Call { callee, .. } | InstKind::Invoke { callee, .. }
                    if *callee == original =>
                {
                    *callee = import_name.clone();
                }
                _ => {}
            }
        }
        copy.name = import_name.clone();
    }
    // Carry over signatures for callees the host has never heard of.
    for callee in callees_of(&copy) {
        if host.signature(&callee).is_none() {
            if let Some((params, ret_ty)) = donor.signature(&callee) {
                host.declare(FuncDecl {
                    name: callee,
                    params,
                    ret_ty,
                });
            }
        }
    }
    host.add_function(copy);
    Ok(ImportOutcome {
        name: import_name,
        deduped: false,
    })
}

/// Links a corpus of modules into one whole-program module named `name`:
/// the union of all definitions (ODR-identical duplicates collapse to one
/// copy) plus the declarations that remain unresolved after linking.
///
/// This is the "what the linker would see" view the cross-module semantic
/// oracle runs the interpreter against.
///
/// # Errors
///
/// [`LinkError::DuplicateSymbol`] when two modules define the same symbol
/// with different bodies.
pub fn link_modules<'a>(
    modules: impl IntoIterator<Item = &'a Module>,
    name: &str,
) -> Result<Module, LinkError> {
    let modules: Vec<&Module> = modules.into_iter().collect();
    let mut linked = Module::new(name);
    for module in &modules {
        for f in module.functions() {
            match linked.function(&f.name) {
                None => {
                    linked.add_function(f.clone());
                }
                Some(existing) if structurally_equal(existing, f) => {}
                Some(_) => return Err(LinkError::DuplicateSymbol(f.name.clone())),
            }
        }
    }
    // Declarations that no module ended up defining.
    for module in &modules {
        for decl in module.declarations() {
            if linked.function(&decl.name).is_none() {
                linked.declare(decl.clone());
            }
        }
    }
    Ok(linked)
}

/// Maps an arbitrary string (e.g. a module name derived from a file path) to
/// a symbol-safe identifier the printer/parser round-trip: every character
/// outside `[A-Za-z0-9_.-]` becomes `_`, and an empty input becomes `anon`.
pub fn sanitize_symbol(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "anon".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::verifier::verify_module;

    fn two_modules() -> (Module, Module) {
        let mut host = parse_module(
            r#"
define i32 @shared(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @caller(i32 %x) {
entry:
  %r = call i32 @shared(i32 %x)
  ret i32 %r
}
"#,
        )
        .unwrap();
        host.name = "host".to_string();
        let mut donor = parse_module(
            r#"
define i32 @shared(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}

define i32 @donor_only(i32 %x) {
entry:
  %a = call i32 @ext(i32 %x)
  %r = sub i32 %a, 3
  ret i32 %r
}
"#,
        )
        .unwrap();
        donor.name = "donor".to_string();
        (host, donor)
    }

    #[test]
    fn rename_rewrites_definition_and_call_sites() {
        let (mut host, _) = two_modules();
        let sites = rename_symbol(&mut host, "shared", "shared.v2").unwrap();
        assert_eq!(sites, 1);
        assert!(host.function("shared").is_none());
        assert!(host.function("shared.v2").is_some());
        let caller = host.function("caller").unwrap();
        assert!(callees_of(caller).contains("shared.v2"));
        assert!(verify_module(&host).is_empty());
    }

    #[test]
    fn rename_moves_declarations_without_leaving_the_old_name() {
        let (mut host, _) = two_modules();
        host.declare(FuncDecl {
            name: "ext".into(),
            params: vec![crate::Type::I32],
            ret_ty: crate::Type::I32,
        });
        let sites = rename_symbol(&mut host, "ext", "ext.v2").unwrap();
        assert_eq!(sites, 0);
        assert!(
            !host.declarations().iter().any(|d| d.name == "ext"),
            "old declaration must be removed"
        );
        assert!(host.declarations().iter().any(|d| d.name == "ext.v2"));
        // The old name is free again.
        assert!(rename_symbol(&mut host, "shared", "ext").is_ok());
    }

    #[test]
    fn rename_refuses_collisions_and_unknowns() {
        let (mut host, _) = two_modules();
        assert_eq!(
            rename_symbol(&mut host, "shared", "caller"),
            Err(LinkError::Collision("caller".to_string()))
        );
        assert_eq!(
            rename_symbol(&mut host, "missing", "other"),
            Err(LinkError::UnknownSymbol("missing".to_string()))
        );
        assert_eq!(rename_symbol(&mut host, "shared", "shared"), Ok(0));
    }

    #[test]
    fn import_renames_on_body_collision() {
        let (mut host, donor) = two_modules();
        let outcome = import_function(&mut host, &donor, "shared").unwrap();
        assert!(!outcome.deduped);
        assert_eq!(outcome.name, "shared.xm.donor");
        assert_eq!(host.num_functions(), 3);
        assert!(verify_module(&host).is_empty());
    }

    #[test]
    fn import_dedups_identical_definitions() {
        let (mut host, _) = two_modules();
        let mut donor = Module::new("donor2");
        donor.add_function(host.function("shared").unwrap().clone());
        let outcome = import_function(&mut host, &donor, "shared").unwrap();
        assert!(outcome.deduped);
        assert_eq!(outcome.name, "shared");
        assert_eq!(host.num_functions(), 2);
    }

    #[test]
    fn import_carries_callee_signatures() {
        let (mut host, mut donor) = two_modules();
        donor.declare(FuncDecl {
            name: "ext".into(),
            params: vec![crate::Type::I32],
            ret_ty: crate::Type::I32,
        });
        import_function(&mut host, &donor, "donor_only").unwrap();
        assert_eq!(
            host.signature("ext"),
            Some((vec![crate::Type::I32], crate::Type::I32))
        );
    }

    #[test]
    fn import_rename_follows_self_recursion() {
        let mut host = parse_module(
            "define i32 @rec(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        )
        .unwrap();
        let mut donor = parse_module(
            "define i32 @rec(i32 %x) {\nentry:\n  %r = call i32 @rec(i32 %x)\n  ret i32 %r\n}",
        )
        .unwrap();
        donor.name = "d".to_string();
        let outcome = import_function(&mut host, &donor, "rec").unwrap();
        let imported = host.function(&outcome.name).unwrap();
        assert!(callees_of(imported).contains(&outcome.name));
    }

    #[test]
    fn link_modules_collapses_odr_duplicates_and_rejects_violations() {
        let (host, donor) = two_modules();
        // host and donor define different @shared bodies: ODR violation.
        assert_eq!(
            link_modules(&[host.clone(), donor.clone()], "prog").err(),
            Some(LinkError::DuplicateSymbol("shared".to_string()))
        );
        // A corpus with an identical duplicate links fine.
        let mut dup = Module::new("dup");
        dup.add_function(host.function("shared").unwrap().clone());
        let linked = link_modules(&[host, dup], "prog").unwrap();
        assert_eq!(linked.num_functions(), 2);
        assert!(verify_module(&linked).is_empty());
    }

    #[test]
    fn structural_equality_ignores_only_the_name() {
        let a = crate::parse_function(
            "define i32 @a(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        )
        .unwrap();
        let mut b = a.clone();
        b.name = "b".to_string();
        assert!(structurally_equal(&a, &b));
        let c = crate::parse_function(
            "define i32 @c(i32 %x) {\nentry:\n  %r = add i32 %x, 2\n  ret i32 %r\n}",
        )
        .unwrap();
        assert!(!structurally_equal(&a, &c));
    }
}
