//! Module linking: symbol renaming, cross-module function import with
//! ODR-style deduplication, and whole-program linking.
//!
//! The cross-module merging subsystem (the `xmerge` crate) discovers similar
//! functions across translation units and merges them with the existing
//! pairwise machinery — which operates within one module. This module provides
//! the glue: importing a donor function into a host module (renaming on
//! collision, deduplicating ODR-identical definitions), rewriting call sites
//! when a symbol is renamed, and producing a linked whole-program view of a
//! corpus for differential semantic checking.

use crate::function::{Function, Linkage};
use crate::module::{FuncDecl, Module};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Errors produced by linking operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The requested symbol does not exist in the source module.
    UnknownSymbol(String),
    /// The target name of a rename is already taken.
    Collision(String),
    /// Two modules define the same symbol with different bodies (an ODR
    /// violation — the program has no well-defined link result).
    DuplicateSymbol(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::UnknownSymbol(s) => write!(f, "unknown symbol @{s}"),
            LinkError::Collision(s) => write!(f, "symbol @{s} already exists"),
            LinkError::DuplicateSymbol(s) => {
                write!(f, "duplicate symbol @{s} with differing definitions")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Returns `true` when two functions have identical bodies modulo their own
/// symbol name (the ODR criterion used for deduplication): same signature,
/// same linkage, and the same printed body after normalizing the function
/// name. Self-recursive calls are compared through the normalized name, so
/// two mutually-independent recursive clones compare equal.
///
/// The comparison goes through [`Function::structural_key`], which caches the
/// normalized print per function (invalidated on mutation), so repeated
/// checks over unchanged functions — hazard scans, [`link_modules`], ODR
/// dedup — do not re-print them.
pub fn structurally_equal(a: &Function, b: &Function) -> bool {
    if a.params != b.params || a.ret_ty != b.ret_ty || a.linkage != b.linkage {
        return false;
    }
    let (ka, kb) = (a.structural_key(), b.structural_key());
    Arc::ptr_eq(&ka, &kb) || ka == kb
}

/// The set of function symbols a function references through calls or invokes.
pub fn callees_of(f: &Function) -> HashSet<String> {
    f.call_sites()
        .map(|(_, callee)| callee.to_string())
        .collect()
}

/// Renames the symbol `from` to `to` across the whole module: the definition
/// (or declaration) itself and every call site referencing it. Returns the
/// number of call sites rewritten.
///
/// # Errors
///
/// [`LinkError::UnknownSymbol`] when nothing named `from` exists, and
/// [`LinkError::Collision`] when `to` is already defined or declared.
pub fn rename_symbol(module: &mut Module, from: &str, to: &str) -> Result<usize, LinkError> {
    if from == to {
        return Ok(0);
    }
    if module.function(to).is_some() || module.declarations().iter().any(|d| d.name == to) {
        return Err(LinkError::Collision(to.to_string()));
    }
    let mut found = false;
    if let Some(f) = module.function_mut(from) {
        f.set_name(to);
        found = true;
    }
    while let Some(mut decl) = module.remove_declaration(from) {
        decl.name = to.to_string();
        module.declare(decl);
        found = true;
    }
    if !found {
        return Err(LinkError::UnknownSymbol(from.to_string()));
    }
    let mut sites = 0usize;
    for f in module.functions_mut() {
        sites += f.rewrite_call_targets(|callee| (callee == from).then(|| to.to_string()));
    }
    Ok(sites)
}

/// The result of importing a function into a host module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportOutcome {
    /// The name the function has in the host module after the import (differs
    /// from the donor name when a collision forced a rename).
    pub name: String,
    /// `true` when the host already held a structurally identical definition
    /// and nothing was copied (ODR deduplication).
    pub deduped: bool,
}

/// Copies the definition of `name` from `donor` into `host`.
///
/// - If the host already defines a structurally identical function of the same
///   name, nothing is copied (`deduped = true`) — the ThinLTO/ODR folding case.
/// - If the host defines a *different* function of the same name, the imported
///   copy is renamed to `<name>.xm.<donor-module>` (with a numeric suffix if
///   even that collides); self-recursive calls follow the rename.
/// - Callees of the imported function that are unknown to the host but have a
///   known signature in the donor are added as external declarations, so the
///   host module keeps resolving signatures after the import.
///
/// # Errors
///
/// [`LinkError::UnknownSymbol`] when the donor has no definition of `name`.
pub fn import_function(
    host: &mut Module,
    donor: &Module,
    name: &str,
) -> Result<ImportOutcome, LinkError> {
    let function = donor
        .function(name)
        .ok_or_else(|| LinkError::UnknownSymbol(name.to_string()))?;
    if let Some(existing) = host.function(name) {
        if structurally_equal(existing, function) {
            return Ok(ImportOutcome {
                name: name.to_string(),
                deduped: true,
            });
        }
    }
    let mut copy = function.clone();
    let import_name = if host.function(name).is_none() {
        name.to_string()
    } else {
        let base = format!("{}.xm.{}", name, sanitize_symbol(&donor.name));
        let mut candidate = base.clone();
        let mut n = 1usize;
        while host.function(&candidate).is_some() {
            candidate = format!("{base}.{n}");
            n += 1;
        }
        candidate
    };
    if import_name != copy.name {
        // Keep self-recursion pointing at the imported copy, not at the
        // host's unrelated function of the original name.
        let original = copy.name.clone();
        copy.rewrite_call_targets(|callee| (callee == original).then(|| import_name.clone()));
        copy.set_name(import_name.clone());
    }
    // Carry over signatures for callees the host has never heard of,
    // preserving the linkage the donor knows them under (a donor-internal
    // callee stays marked internal — the declaration refers to a module-local
    // symbol, not to some unrelated external definition).
    for callee in callees_of(&copy) {
        if host.signature(&callee).is_none() {
            if let Some((params, ret_ty)) = donor.signature(&callee) {
                let linkage = donor.symbol_linkage(&callee).unwrap_or_default();
                host.declare(FuncDecl {
                    name: callee,
                    params,
                    ret_ty,
                    linkage,
                });
            }
        }
    }
    host.add_function(copy);
    Ok(ImportOutcome {
        name: import_name,
        deduped: false,
    })
}

/// The deterministic whole-program name an internal function of `module_name`
/// is localized to by [`link_modules`] (before collision disambiguation).
pub fn localized_symbol(name: &str, module_name: &str) -> String {
    format!("{}.__local.{}", name, sanitize_symbol(module_name))
}

/// Links a corpus of modules into one whole-program module named `name`:
/// the union of all definitions (ODR-identical duplicates collapse to one
/// copy) plus the declarations that remain unresolved after linking.
///
/// Internal-linkage functions are module-local symbols: each is *localized* —
/// renamed to [`localized_symbol`] (with a numeric suffix on the rare further
/// collision) with its defining module's call sites rewritten — instead of
/// participating in ODR resolution, exactly as a real linker keeps `static`
/// functions apart.
///
/// This is the "what the linker would see" view the cross-module semantic
/// oracle runs the interpreter against.
///
/// # Errors
///
/// [`LinkError::DuplicateSymbol`] when two modules define the same external
/// symbol with different bodies.
pub fn link_modules<'a>(
    modules: impl IntoIterator<Item = &'a Module>,
    name: &str,
) -> Result<Module, LinkError> {
    link_modules_with_renames(modules, name).map(|(linked, _)| linked)
}

/// The localization map of [`link_modules_with_renames`]: for every internal
/// function, `(module name, original name) -> linked name`.
pub type LinkRenames = HashMap<(String, String), String>;

/// [`link_modules`], additionally returning the localization map: for every
/// internal function, `(module name, original name) -> linked name`. Callers
/// that need to look a specific module's internal function up in the linked
/// program (e.g. the differential oracle) resolve it through this map.
pub fn link_modules_with_renames<'a>(
    modules: impl IntoIterator<Item = &'a Module>,
    name: &str,
) -> Result<(Module, LinkRenames), LinkError> {
    let modules: Vec<&Module> = modules.into_iter().collect();
    let mut linked = Module::new(name);
    let mut localized: LinkRenames = HashMap::new();
    let mut taken: HashSet<String> = modules
        .iter()
        .flat_map(|m| m.functions())
        .filter(|f| f.linkage == Linkage::External)
        .map(|f| f.name.clone())
        .collect();

    for module in &modules {
        // Localization plan for this module's internal functions.
        let mut renames: HashMap<String, String> = HashMap::new();
        for f in module.functions() {
            if f.linkage != Linkage::Internal {
                continue;
            }
            let base = localized_symbol(&f.name, &module.name);
            let mut candidate = base.clone();
            let mut n = 2usize;
            while !taken.insert(candidate.clone()) {
                candidate = format!("{base}.{n}");
                n += 1;
            }
            localized.insert((module.name.clone(), f.name.clone()), candidate.clone());
            renames.insert(f.name.clone(), candidate);
        }
        for f in module.functions() {
            // Only clone when a localization actually touches this function
            // (its own name, or a callee); the common all-external path — in
            // particular the per-commit oracle links of the xmerge pipeline —
            // compares in place and clones only on insertion.
            let needs_rewrite = !renames.is_empty()
                && (renames.contains_key(&f.name)
                    || f.call_sites()
                        .any(|(_, callee)| renames.contains_key(callee)));
            if !needs_rewrite {
                match linked.function(&f.name) {
                    None => {
                        linked.add_function(f.clone());
                    }
                    Some(existing) if structurally_equal(existing, f) => {}
                    Some(_) => return Err(LinkError::DuplicateSymbol(f.name.clone())),
                }
                continue;
            }
            let mut copy = f.clone();
            copy.rewrite_call_targets(|callee| renames.get(callee).cloned());
            if let Some(new_name) = renames.get(&copy.name) {
                copy.set_name(new_name.clone());
            }
            match linked.function(&copy.name) {
                None => {
                    linked.add_function(copy);
                }
                Some(existing) if structurally_equal(existing, &copy) => {}
                Some(_) => return Err(LinkError::DuplicateSymbol(copy.name.clone())),
            }
        }
    }
    // Declarations that no module ended up defining.
    for module in &modules {
        for decl in module.declarations() {
            if linked.function(&decl.name).is_none() {
                linked.declare(decl.clone());
            }
        }
    }
    Ok((linked, localized))
}

/// Maps an arbitrary string (e.g. a module name derived from a file path) to
/// a symbol-safe identifier the printer/parser round-trip: every character
/// outside `[A-Za-z0-9_.-]` becomes `_`, and an empty input becomes `anon`.
pub fn sanitize_symbol(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "anon".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::verifier::verify_module;

    fn two_modules() -> (Module, Module) {
        let mut host = parse_module(
            r#"
define i32 @shared(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @caller(i32 %x) {
entry:
  %r = call i32 @shared(i32 %x)
  ret i32 %r
}
"#,
        )
        .unwrap();
        host.name = "host".to_string();
        let mut donor = parse_module(
            r#"
define i32 @shared(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}

define i32 @donor_only(i32 %x) {
entry:
  %a = call i32 @ext(i32 %x)
  %r = sub i32 %a, 3
  ret i32 %r
}
"#,
        )
        .unwrap();
        donor.name = "donor".to_string();
        (host, donor)
    }

    #[test]
    fn rename_rewrites_definition_and_call_sites() {
        let (mut host, _) = two_modules();
        let sites = rename_symbol(&mut host, "shared", "shared.v2").unwrap();
        assert_eq!(sites, 1);
        assert!(host.function("shared").is_none());
        assert!(host.function("shared.v2").is_some());
        let caller = host.function("caller").unwrap();
        assert!(callees_of(caller).contains("shared.v2"));
        assert!(verify_module(&host).is_empty());
    }

    #[test]
    fn rename_moves_declarations_without_leaving_the_old_name() {
        let (mut host, _) = two_modules();
        host.declare(FuncDecl::new(
            "ext",
            vec![crate::Type::I32],
            crate::Type::I32,
        ));
        let sites = rename_symbol(&mut host, "ext", "ext.v2").unwrap();
        assert_eq!(sites, 0);
        assert!(
            !host.declarations().iter().any(|d| d.name == "ext"),
            "old declaration must be removed"
        );
        assert!(host.declarations().iter().any(|d| d.name == "ext.v2"));
        // The old name is free again.
        assert!(rename_symbol(&mut host, "shared", "ext").is_ok());
    }

    #[test]
    fn rename_refuses_collisions_and_unknowns() {
        let (mut host, _) = two_modules();
        assert_eq!(
            rename_symbol(&mut host, "shared", "caller"),
            Err(LinkError::Collision("caller".to_string()))
        );
        assert_eq!(
            rename_symbol(&mut host, "missing", "other"),
            Err(LinkError::UnknownSymbol("missing".to_string()))
        );
        assert_eq!(rename_symbol(&mut host, "shared", "shared"), Ok(0));
    }

    #[test]
    fn import_renames_on_body_collision() {
        let (mut host, donor) = two_modules();
        let outcome = import_function(&mut host, &donor, "shared").unwrap();
        assert!(!outcome.deduped);
        assert_eq!(outcome.name, "shared.xm.donor");
        assert_eq!(host.num_functions(), 3);
        assert!(verify_module(&host).is_empty());
    }

    #[test]
    fn import_dedups_identical_definitions() {
        let (mut host, _) = two_modules();
        let mut donor = Module::new("donor2");
        donor.add_function(host.function("shared").unwrap().clone());
        let outcome = import_function(&mut host, &donor, "shared").unwrap();
        assert!(outcome.deduped);
        assert_eq!(outcome.name, "shared");
        assert_eq!(host.num_functions(), 2);
    }

    #[test]
    fn import_carries_callee_signatures() {
        let (mut host, mut donor) = two_modules();
        donor.declare(FuncDecl::new(
            "ext",
            vec![crate::Type::I32],
            crate::Type::I32,
        ));
        import_function(&mut host, &donor, "donor_only").unwrap();
        assert_eq!(
            host.signature("ext"),
            Some((vec![crate::Type::I32], crate::Type::I32))
        );
    }

    #[test]
    fn import_rename_follows_self_recursion() {
        let mut host = parse_module(
            "define i32 @rec(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        )
        .unwrap();
        let mut donor = parse_module(
            "define i32 @rec(i32 %x) {\nentry:\n  %r = call i32 @rec(i32 %x)\n  ret i32 %r\n}",
        )
        .unwrap();
        donor.name = "d".to_string();
        let outcome = import_function(&mut host, &donor, "rec").unwrap();
        let imported = host.function(&outcome.name).unwrap();
        assert!(callees_of(imported).contains(&outcome.name));
    }

    #[test]
    fn link_modules_collapses_odr_duplicates_and_rejects_violations() {
        let (host, donor) = two_modules();
        // host and donor define different @shared bodies: ODR violation.
        assert_eq!(
            link_modules(&[host.clone(), donor.clone()], "prog").err(),
            Some(LinkError::DuplicateSymbol("shared".to_string()))
        );
        // A corpus with an identical duplicate links fine.
        let mut dup = Module::new("dup");
        dup.add_function(host.function("shared").unwrap().clone());
        let linked = link_modules(&[host, dup], "prog").unwrap();
        assert_eq!(linked.num_functions(), 2);
        assert!(verify_module(&linked).is_empty());
    }

    #[test]
    fn internal_functions_are_localized_by_link_modules() {
        let internal = |module: &str, k: i32| {
            let mut m = parse_module(&format!(
                "define internal i32 @helper(i32 %x) {{\nentry:\n  %r = add i32 %x, {k}\n  ret i32 %r\n}}\n\ndefine i32 @{module}_entry(i32 %x) {{\nentry:\n  %r = call i32 @helper(i32 %x)\n  ret i32 %r\n}}"
            ))
            .unwrap();
            m.name = module.to_string();
            m
        };
        // Two modules with *different* internal @helper bodies: a real linker
        // keeps them apart, and so must link_modules.
        let (a, b) = (internal("a", 1), internal("b", 2));
        let (linked, renames) = link_modules_with_renames([&a, &b], "prog").unwrap();
        assert!(verify_module(&linked).is_empty());
        assert_eq!(linked.num_functions(), 4);
        let a_helper = renames
            .get(&("a".to_string(), "helper".to_string()))
            .unwrap();
        let b_helper = renames
            .get(&("b".to_string(), "helper".to_string()))
            .unwrap();
        assert_ne!(a_helper, b_helper);
        assert_eq!(a_helper, &localized_symbol("helper", "a"));
        // Call sites follow their module's copy.
        assert!(callees_of(linked.function("a_entry").unwrap()).contains(a_helper));
        assert!(callees_of(linked.function("b_entry").unwrap()).contains(b_helper));
        // No un-localized @helper survives.
        assert!(linked.function("helper").is_none());
    }

    #[test]
    fn linkage_mismatch_breaks_structural_equality() {
        let text = "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}";
        let a = crate::parse_function(text).unwrap();
        let mut b = a.clone();
        assert!(structurally_equal(&a, &b));
        b.set_linkage(crate::function::Linkage::Internal);
        assert!(
            !structurally_equal(&a, &b),
            "internal and external copies are different symbols"
        );
    }

    #[test]
    fn structural_keys_are_cached_and_invalidated_on_mutation() {
        let mut f = crate::parse_function(
            "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        )
        .unwrap();
        let k1 = f.structural_key();
        let k2 = f.structural_key();
        // Pointer equality proves the second lookup was served from the cache
        // (counters are process-global and tests run concurrently, so they
        // only support a monotonicity check here).
        assert!(Arc::ptr_eq(&k1, &k2), "second lookup must hit the cache");
        let (hits, misses) = crate::function::structural_key_counters();
        assert!(hits >= 1 && misses >= 1);
        // Mutation invalidates; the key changes accordingly.
        let add = f.inst_by_name("r").unwrap();
        f.inst_mut(add).kind = crate::InstKind::Binary {
            op: crate::BinOp::Mul,
            lhs: crate::Value::Arg(0),
            rhs: crate::Value::i32(3),
        };
        let k3 = f.structural_key();
        assert_ne!(k1, k3);
        // set_name invalidates too (self-call sensitivity), and a rename
        // through the public field is detected at lookup.
        let mut g = f.clone();
        g.name = "direct_poke".to_string();
        assert_eq!(
            g.structural_key(),
            f.structural_key(),
            "no self-calls: rename leaves the key unchanged"
        );
    }

    #[test]
    fn structural_key_tracks_self_recursion_across_renames() {
        let mut f = crate::parse_function(
            "define i32 @rec(i32 %x) {\nentry:\n  %r = call i32 @rec(i32 %x)\n  ret i32 %r\n}",
        )
        .unwrap();
        // Two mutually-independent recursive clones compare equal.
        let g = crate::parse_function(
            "define i32 @mirror(i32 %x) {\nentry:\n  %r = call i32 @mirror(i32 %x)\n  ret i32 %r\n}",
        )
        .unwrap();
        assert!(structurally_equal(&f, &g));
        let k1 = f.structural_key();
        // A direct field poke makes the old self-call a call to a *different*
        // function; the stale cache must be detected at lookup.
        f.name = "other".to_string();
        let k2 = f.structural_key();
        assert_ne!(k1, k2, "@rec(...) is no longer a self-call after rename");
        assert!(!structurally_equal(&f, &g));
        // rename_symbol (set_name + call-site rewrite) keeps self-recursion
        // intact, so the keys agree again.
        let mut m = Module::new("m");
        m.add_function(g.clone());
        rename_symbol(&mut m, "mirror", "renamed.mirror").unwrap();
        assert!(structurally_equal(
            m.function("renamed.mirror").unwrap(),
            &g
        ));
    }

    #[test]
    fn structural_equality_ignores_only_the_name() {
        let a = crate::parse_function(
            "define i32 @a(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        )
        .unwrap();
        let mut b = a.clone();
        b.name = "b".to_string();
        assert!(structurally_equal(&a, &b));
        let c = crate::parse_function(
            "define i32 @c(i32 %x) {\nentry:\n  %r = add i32 %x, 2\n  ret i32 %r\n}",
        )
        .unwrap();
        assert!(!structurally_equal(&a, &c));
    }
}
