//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy algorithm).
//!
//! Dominance information drives three parts of the reproduction: the verifier
//! (SSA dominance property), the standard SSA construction used by `mem2reg`
//! and by SalSSA's SSA-repair stage, and the phi-node placement of the merged
//! code generator.

use crate::function::Function;
use crate::ids::{BlockId, InstId};
use std::collections::{HashMap, HashSet};

/// The dominator tree of a function, including dominance frontiers.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each reachable block (the entry maps to itself).
    idom: HashMap<BlockId, BlockId>,
    /// Children in the dominator tree.
    children: HashMap<BlockId, Vec<BlockId>>,
    /// Dominance frontier of each reachable block.
    frontier: HashMap<BlockId, Vec<BlockId>>,
    /// Reverse post-order of reachable blocks.
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo`.
    rpo_index: HashMap<BlockId, usize>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `function`.
    ///
    /// # Panics
    ///
    /// Panics if the function has no entry block.
    pub fn compute(function: &Function) -> DomTree {
        let entry = function.entry();
        let rpo = function.reverse_post_order();
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let preds_all = function.predecessors();
        // Only consider predecessors that are themselves reachable.
        let preds: HashMap<BlockId, Vec<BlockId>> = rpo
            .iter()
            .map(|b| {
                let ps = preds_all
                    .get(b)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|p| rpo_index.contains_key(p))
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                (*b, ps)
            })
            .collect();

        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[&b] {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children: HashMap<BlockId, Vec<BlockId>> =
            rpo.iter().map(|b| (*b, Vec::new())).collect();
        for (&b, &d) in &idom {
            if b != entry {
                children.entry(d).or_default().push(b);
            }
        }
        for kids in children.values_mut() {
            kids.sort_by_key(|b| rpo_index[b]);
        }

        // Dominance frontiers (Cytron et al. via the CHK formulation).
        let mut frontier: HashMap<BlockId, Vec<BlockId>> =
            rpo.iter().map(|b| (*b, Vec::new())).collect();
        for &b in &rpo {
            let ps = &preds[&b];
            if ps.len() < 2 {
                continue;
            }
            for &p in ps {
                let mut runner = p;
                while runner != idom[&b] {
                    let entry_vec = frontier.entry(runner).or_default();
                    if !entry_vec.contains(&b) {
                        entry_vec.push(b);
                    }
                    runner = idom[&runner];
                }
            }
        }

        DomTree {
            idom,
            children,
            frontier,
            rpo,
            rpo_index,
            entry,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The reverse post-order used internally.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Returns `true` when `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo_index.contains_key(&block)
    }

    /// Immediate dominator of a reachable block (`None` for the entry or for
    /// unreachable blocks).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        let d = *self.idom.get(&block)?;
        if d == block {
            None
        } else {
            Some(d)
        }
    }

    /// Children of `block` in the dominator tree.
    pub fn children(&self, block: BlockId) -> &[BlockId] {
        self.children.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Dominance frontier of `block`.
    pub fn frontier(&self, block: BlockId) -> &[BlockId] {
        self.frontier.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns `true` when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Returns `true` when `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Blocks in dominator-tree pre-order (useful for SSA renaming).
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.rpo.len());
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children(b).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Returns `true` when the definition `def` dominates the use of its value
    /// at instruction `user`. Phi uses are considered to occur at the end of
    /// the corresponding predecessor block, which the caller models by passing
    /// `user_block` explicitly.
    pub fn def_dominates_use(
        &self,
        function: &Function,
        def: InstId,
        user: InstId,
        user_block: BlockId,
    ) -> bool {
        let def_block = function.inst(def).block;
        if def_block != user_block {
            return self.strictly_dominates(def_block, user_block)
                || self.dominates(def_block, user_block);
        }
        // Same block: rely on intra-block ordering. Phis implicitly precede
        // every ordinary instruction.
        let block = function.block(def_block);
        let order: Vec<InstId> = block.all_insts().collect();
        let def_pos = order.iter().position(|i| *i == def);
        let use_pos = order.iter().position(|i| *i == user);
        match (def_pos, use_pos) {
            (Some(d), Some(u)) => d < u,
            // If the user is not in this block (e.g. a phi use routed through a
            // predecessor), the definition reaches the block end and therefore
            // the use.
            (Some(_), None) => true,
            _ => false,
        }
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Computes the set of blocks where phi-nodes are required for a variable
/// defined in `def_blocks`, using iterated dominance frontiers.
pub fn iterated_dominance_frontier(
    domtree: &DomTree,
    def_blocks: &HashSet<BlockId>,
) -> HashSet<BlockId> {
    let mut result = HashSet::new();
    let mut worklist: Vec<BlockId> = def_blocks
        .iter()
        .copied()
        .filter(|b| domtree.is_reachable(*b))
        .collect();
    let mut enqueued: HashSet<BlockId> = worklist.iter().copied().collect();
    while let Some(b) = worklist.pop() {
        for &f in domtree.frontier(b) {
            if result.insert(f) && enqueued.insert(f) {
                worklist.push(f);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::ICmpPred;
    use crate::types::Type;
    use crate::value::Value;

    /// Builds the classic diamond CFG: entry -> {a, b} -> join.
    fn diamond() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("d", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        let t = b.create_block("a");
        let e = b.create_block("b");
        let j = b.create_block("join");
        b.switch_to(entry);
        let c = b.icmp(ICmpPred::Sgt, Value::Arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(Value::Arg(0)));
        (b.finish(), entry, t, e, j)
    }

    #[test]
    fn diamond_idoms() {
        let (f, entry, a, b, join) = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(a), Some(entry));
        assert_eq!(dt.idom(b), Some(entry));
        assert_eq!(dt.idom(join), Some(entry));
        assert!(dt.dominates(entry, join));
        assert!(!dt.dominates(a, join));
        assert!(dt.strictly_dominates(entry, a));
        assert!(!dt.strictly_dominates(a, a));
        assert!(dt.dominates(a, a));
    }

    #[test]
    fn diamond_frontiers() {
        let (f, _entry, a, b, join) = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.frontier(a), &[join]);
        assert_eq!(dt.frontier(b), &[join]);
        assert!(dt.frontier(join).is_empty());
    }

    #[test]
    fn loop_frontier_includes_header() {
        // entry -> header -> body -> header (back edge); header -> exit
        let mut b = FunctionBuilder::new("loop", vec![Type::I32], Type::Void);
        let entry = b.create_block("entry");
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let c = b.icmp(ICmpPred::Slt, Value::Arg(0), Value::i32(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(exit), Some(header));
        // The back edge puts the header in the body's (and its own) frontier.
        assert!(dt.frontier(body).contains(&header));
        assert!(dt.frontier(header).contains(&header));
    }

    #[test]
    fn idf_of_two_branch_defs_is_join() {
        let (f, _entry, a, b, join) = diamond();
        let dt = DomTree::compute(&f);
        let defs: HashSet<BlockId> = [a, b].into_iter().collect();
        let idf = iterated_dominance_frontier(&dt, &defs);
        assert_eq!(idf, [join].into_iter().collect());
    }

    #[test]
    fn preorder_visits_all_reachable_blocks_once() {
        let (f, ..) = diamond();
        let dt = DomTree::compute(&f);
        let pre = dt.preorder();
        assert_eq!(pre.len(), 4);
        let unique: HashSet<_> = pre.iter().collect();
        assert_eq!(unique.len(), 4);
        assert_eq!(pre[0], f.entry());
    }

    #[test]
    fn unreachable_blocks_are_not_in_tree() {
        let (mut f, ..) = diamond();
        let dead = f.add_block("dead");
        f.append_inst(dead, crate::instruction::InstKind::Unreachable, Type::Void);
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(dead));
        assert_eq!(dt.idom(dead), None);
        assert!(!dt.dominates(f.entry(), dead));
    }

    #[test]
    fn intra_block_def_use_ordering() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let entry = b.create_block("entry");
        b.switch_to(entry);
        let x = b.binary(crate::instruction::BinOp::Add, Value::Arg(0), Value::i32(1));
        let y = b.binary(crate::instruction::BinOp::Mul, x, Value::i32(2));
        b.ret(Some(y));
        let f = b.finish();
        let dt = DomTree::compute(&f);
        let xid = x.as_inst().unwrap();
        let yid = y.as_inst().unwrap();
        assert!(dt.def_dominates_use(&f, xid, yid, entry));
        assert!(!dt.def_dominates_use(&f, yid, xid, entry));
    }
}
