//! # `callgraph` — the whole-program call-graph subsystem
//!
//! The merge pipeline's profitability model counts instruction savings, but
//! *where* a merged body lives decides how many call sites become
//! cross-module thunk hops. This crate supplies the missing analysis layer:
//!
//! * [`index`] — a serializable, incrementally rebuildable **call-site
//!   index**: per-module summaries of every defined function's static call
//!   sites, keyed by [`ssa_ir::Module::content_hash`] exactly like the
//!   `xmerge` summary index, so fixpoint rounds only re-scan modules a commit
//!   touched;
//! * [`graph`] — the **resolved call graph**: direct-call edges with
//!   per-edge static call-site counts under linker-style symbol resolution
//!   (own module first, then the first externally visible definition;
//!   internal symbols never captured across modules), Tarjan **SCC
//!   condensation**, and per-function [`Locality`] summaries whose
//!   [`Locality::coupling`] is the placement cost the cross-module
//!   host-selection policy minimizes;
//! * [`regions`] — **module region partitioning**: connected components over
//!   cross-module call edges, shared external definitions and candidate
//!   pairs, giving the pipeline independently committable sub-programs it can
//!   plan in parallel.
//!
//! ## Example
//!
//! ```rust
//! use callgraph::{CallGraph, CorpusCallIndex};
//! use ssa_ir::parse_module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = parse_module(
//!     "define i32 @f(i32 %x) {\nentry:\n  %a = call i32 @g(i32 %x)\n  %b = call i32 @g(i32 %a)\n  ret i32 %b\n}\n\ndefine i32 @g(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
//! )?;
//! m.name = "m".to_string();
//! let graph = CallGraph::resolve(&CorpusCallIndex::build(&[m]));
//! assert_eq!(graph.num_edges(), 1);
//! assert_eq!(graph.edges[0].count, 2);
//! let g = graph.node_id(0, "g").unwrap();
//! assert_eq!(graph.locality()[g].intra_callers, 2);
//! # Ok(())
//! # }
//! ```

pub mod graph;
pub mod index;
pub mod regions;

pub use graph::{CallEdge, CallGraph, CallNode, Condensation, Locality};
pub use index::{CallIndexReuse, CorpusCallIndex, FunctionCalls, ModuleCalls};
pub use regions::module_regions;
