//! Module region partitioning.
//!
//! Two modules belong to the same *region* when a merge commit in one can
//! observe or constrain the other: a cross-module call edge binds them, a
//! shared externally visible definition binds them (the ODR hazard rules look
//! across modules), and a discovered candidate pair binds them (the commit
//! itself would couple them). Connected regions partition the corpus into
//! independent sub-programs the merge pipeline can plan and commit in
//! parallel without changing any individual region's result.

/// Partitions `num_modules` modules into connected regions under the given
/// undirected links (module-index pairs; out-of-range indices panic).
/// Returns the regions ordered by their smallest member, each region's module
/// list sorted ascending — a deterministic partition for a deterministic
/// pipeline.
pub fn module_regions(
    num_modules: usize,
    links: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(num_modules);
    for (a, b) in links {
        uf.union(a, b);
    }
    let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); num_modules];
    for m in 0..num_modules {
        by_root[uf.find(m)].push(m);
    }
    // Members were pushed in ascending order; regions come out ordered by
    // smallest member because roots are visited in index order.
    by_root.retain(|region| !region.is_empty());
    by_root.sort_by_key(|region| region[0]);
    by_root
}

/// Plain union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_links_means_singleton_regions() {
        assert_eq!(
            module_regions(3, std::iter::empty()),
            vec![vec![0], vec![1], vec![2]]
        );
    }

    #[test]
    fn links_merge_transitively_and_order_is_deterministic() {
        let regions = module_regions(6, [(4, 2), (2, 0), (5, 3)]);
        assert_eq!(regions, vec![vec![0, 2, 4], vec![1], vec![3, 5]]);
        // Link order does not matter.
        let again = module_regions(6, [(5, 3), (0, 2), (4, 2)]);
        assert_eq!(regions, again);
    }

    #[test]
    fn fully_linked_corpus_is_one_region() {
        let regions = module_regions(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(regions, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn empty_corpus_has_no_regions() {
        assert!(module_regions(0, std::iter::empty()).is_empty());
    }
}
