//! The resolved whole-program call graph.
//!
//! [`CallGraph::resolve`] turns a [`CorpusCallIndex`] into nodes (defined
//! functions) and direct-call edges with static call-site counts, applying
//! linker-style symbol resolution: a call binds to the caller's own module
//! first, then to the first externally visible definition elsewhere in corpus
//! order; internal definitions in other modules never capture it. Calls with
//! no definition anywhere stay *external* (library calls) and carry no edge.
//!
//! On top of the edges the graph offers Tarjan SCC condensation
//! ([`CallGraph::sccs`], [`CallGraph::condensation`]) and per-function
//! [`Locality`] summaries — the static coupling numbers the cross-module
//! merge pipeline's host-selection policy ranks placements with.

use crate::index::CorpusCallIndex;
use ssa_ir::Linkage;
use std::collections::{BTreeSet, HashMap};

/// One defined function of the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallNode {
    /// Index of the defining module in [`CallGraph::modules`].
    pub module: usize,
    /// Symbol name.
    pub name: String,
    /// Linkage of the definition.
    pub linkage: Linkage,
}

/// One direct-call edge, aggregated over all call sites of the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Caller node index.
    pub caller: usize,
    /// Callee node index.
    pub callee: usize,
    /// Number of static call sites behind this edge.
    pub count: u32,
}

/// Static caller/callee locality of one function: how many call sites bind it
/// to its own module vs. other modules. Self-calls are excluded throughout —
/// they move with the body and never force a cross-module hop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Locality {
    /// Call sites in the function's own module that target it.
    pub intra_callers: u32,
    /// Call sites in other modules that target it.
    pub cross_callers: u32,
    /// Call sites in the function's body targeting same-module definitions.
    pub intra_callees: u32,
    /// Call sites in the function's body targeting other-module definitions.
    pub cross_callees: u32,
    /// Call sites in the function's body with no definition in the corpus
    /// (external library calls — placement-neutral).
    pub external_callees: u32,
}

impl Locality {
    /// The number of static call edges that would be forced cross-module if
    /// this function's body moved to another module: its intra-module callers
    /// would hop out, its intra-module callees would be hopped back to.
    pub fn coupling(&self) -> u32 {
        self.intra_callers + self.intra_callees
    }
}

/// The condensation of the call graph: strongly connected components and the
/// DAG between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    /// Component index of every node (parallel to [`CallGraph::nodes`]).
    pub component_of: Vec<usize>,
    /// Node lists per component, in reverse topological order (callees before
    /// callers, as Tarjan emits them); each list is sorted ascending.
    pub components: Vec<Vec<usize>>,
    /// Deduplicated component-level edges `(caller component, callee
    /// component)`, excluding self-edges.
    pub edges: BTreeSet<(usize, usize)>,
}

/// The resolved whole-program call graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraph {
    /// Module names, in corpus order.
    pub modules: Vec<String>,
    /// One node per defined function, grouped by module in corpus order.
    pub nodes: Vec<CallNode>,
    /// Direct-call edges with static site counts, in deterministic
    /// (caller, callee) order.
    pub edges: Vec<CallEdge>,
    /// Unresolved (external) call sites per node, parallel to `nodes`.
    external_sites: Vec<u32>,
    /// Per-module `symbol -> node` lookup, parallel to `modules` (nested so
    /// [`CallGraph::node_id`] looks up by `&str` without allocating).
    by_symbol: Vec<HashMap<String, usize>>,
}

impl CallGraph {
    /// Resolves a call-site index into the whole-program graph.
    pub fn resolve(index: &CorpusCallIndex) -> CallGraph {
        let modules: Vec<String> = index.modules.iter().map(|m| m.module.clone()).collect();
        let mut nodes = Vec::with_capacity(index.num_functions());
        let mut by_symbol: Vec<HashMap<String, usize>> = vec![HashMap::new(); modules.len()];
        // First externally visible definition of every symbol, corpus order.
        let mut external_def: HashMap<&str, usize> = HashMap::new();
        for (mi, m) in index.modules.iter().enumerate() {
            for f in &m.functions {
                let id = nodes.len();
                nodes.push(CallNode {
                    module: mi,
                    name: f.name.clone(),
                    linkage: f.linkage,
                });
                by_symbol[mi].insert(f.name.clone(), id);
                if f.linkage == Linkage::External {
                    external_def.entry(&f.name).or_insert(id);
                }
            }
        }
        let mut edges = Vec::new();
        let mut external_sites = vec![0u32; nodes.len()];
        let mut caller = 0usize;
        for (mi, m) in index.modules.iter().enumerate() {
            for f in &m.functions {
                for (callee, count) in &f.callees {
                    let target = by_symbol[mi]
                        .get(callee.as_str())
                        .or_else(|| external_def.get(callee.as_str()))
                        .copied();
                    match target {
                        Some(callee) => edges.push(CallEdge {
                            caller,
                            callee,
                            count: *count,
                        }),
                        None => external_sites[caller] += *count,
                    }
                }
                caller += 1;
            }
        }
        edges.sort_unstable_by_key(|e| (e.caller, e.callee));
        CallGraph {
            modules,
            nodes,
            edges,
            external_sites,
            by_symbol,
        }
    }

    /// Looks a node up by module index and symbol name.
    pub fn node_id(&self, module: usize, name: &str) -> Option<usize> {
        self.by_symbol.get(module)?.get(name).copied()
    }

    /// Number of nodes (defined functions).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of aggregated direct-call edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total static call sites resolved to an edge.
    pub fn num_resolved_sites(&self) -> u64 {
        self.edges.iter().map(|e| u64::from(e.count)).sum()
    }

    /// Total static call sites with no definition in the corpus.
    pub fn num_external_sites(&self) -> u64 {
        self.external_sites.iter().map(|&c| u64::from(c)).sum()
    }

    /// Per-function locality summaries, parallel to [`CallGraph::nodes`].
    pub fn locality(&self) -> Vec<Locality> {
        let mut out = vec![Locality::default(); self.nodes.len()];
        for e in &self.edges {
            if e.caller == e.callee {
                continue; // Self-calls move with the body.
            }
            let intra = self.nodes[e.caller].module == self.nodes[e.callee].module;
            if intra {
                out[e.caller].intra_callees += e.count;
                out[e.callee].intra_callers += e.count;
            } else {
                out[e.caller].cross_callees += e.count;
                out[e.callee].cross_callers += e.count;
            }
        }
        for (node, sites) in self.external_sites.iter().enumerate() {
            out[node].external_callees = *sites;
        }
        out
    }

    /// Strongly connected components via Tarjan's algorithm (iterative, so
    /// deep call chains cannot overflow the stack). Components come back in
    /// reverse topological order — every callee component before its callers —
    /// with each component's node list sorted ascending.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        // Adjacency as index ranges into `edges` (edges are caller-sorted).
        let mut first = vec![self.edges.len(); n + 1];
        for (i, e) in self.edges.iter().enumerate().rev() {
            first[e.caller] = i;
        }
        first[n] = self.edges.len();
        // Forward-fill gaps left by callers without outgoing edges.
        for i in (0..n).rev() {
            if first[i] > first[i + 1] {
                first[i] = first[i + 1];
            }
        }
        const UNVISITED: usize = usize::MAX;
        let mut index_of = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS frames: (node, iterator position into its successors).
        for root in 0..n {
            if index_of[root] != UNVISITED {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos == 0 {
                    index_of[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let mut advanced = false;
                let out = first[v]..first[v + 1];
                while first[v] + *pos < out.end {
                    let w = self.edges[out.start + *pos].callee;
                    *pos += 1;
                    if index_of[w] == UNVISITED {
                        frames.push((w, 0));
                        advanced = true;
                        break;
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index_of[w]);
                    }
                }
                if advanced {
                    continue;
                }
                // All successors done: close v.
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index_of[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
        components
    }

    /// The SCC condensation: component membership plus the deduplicated DAG
    /// between components.
    pub fn condensation(&self) -> Condensation {
        let components = self.sccs();
        let mut component_of = vec![0usize; self.nodes.len()];
        for (ci, members) in components.iter().enumerate() {
            for &node in members {
                component_of[node] = ci;
            }
        }
        let mut edges = BTreeSet::new();
        for e in &self.edges {
            let (a, b) = (component_of[e.caller], component_of[e.callee]);
            if a != b {
                edges.insert((a, b));
            }
        }
        Condensation {
            component_of,
            components,
            edges,
        }
    }

    /// Module-index pairs linked by a cross-module call edge (deduplicated,
    /// deterministic order) — one of the inputs of the region partition.
    pub fn cross_module_links(&self) -> Vec<(usize, usize)> {
        let mut links = BTreeSet::new();
        for e in &self.edges {
            let (a, b) = (self.nodes[e.caller].module, self.nodes[e.callee].module);
            if a != b {
                links.insert((a.min(b), a.max(b)));
            }
        }
        links.into_iter().collect()
    }

    /// Module-index pairs that define the same externally visible symbol
    /// (ODR duplicates) — modules the merge pipeline must keep in one region
    /// because committing in one can constrain the other's hazard rules.
    pub fn shared_definition_links(&self) -> Vec<(usize, usize)> {
        let mut sites: HashMap<&str, Vec<usize>> = HashMap::new();
        for node in &self.nodes {
            if node.linkage == Linkage::External {
                let mods = sites.entry(&node.name).or_default();
                if mods.last() != Some(&node.module) {
                    mods.push(node.module);
                }
            }
        }
        let mut links = BTreeSet::new();
        for mods in sites.values() {
            for pair in mods.windows(2) {
                links.insert((pair[0].min(pair[1]), pair[0].max(pair[1])));
            }
        }
        links.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_ir::{parse_module, Module};

    fn named(text: &str, name: &str) -> Module {
        let mut m = parse_module(text).unwrap();
        m.name = name.to_string();
        m
    }

    fn diamond_corpus() -> Vec<Module> {
        // a: main -> helper (x2, local), helper -> ext_sink (external, no def)
        // b: entry_b -> shared@b (local), entry_b -> main@a (cross)
        // shared is defined externally in b AND c (ODR pair); c's worker calls
        // its own internal helper (same name as a's external one — no capture).
        let a = named(
            "define i32 @main(i32 %x) {\nentry:\n  %r = call i32 @helper(i32 %x)\n  %s = call i32 @helper(i32 %r)\n  ret i32 %s\n}\n\ndefine i32 @helper(i32 %x) {\nentry:\n  %r = call i32 @ext_sink(i32 %x)\n  ret i32 %r\n}",
            "a",
        );
        let b = named(
            "define i32 @entry_b(i32 %x) {\nentry:\n  %r = call i32 @shared(i32 %x)\n  %s = call i32 @main(i32 %r)\n  ret i32 %s\n}\n\ndefine i32 @shared(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
            "b",
        );
        let c = named(
            "define i32 @shared(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n\ndefine internal i32 @helper(i32 %x) {\nentry:\n  %r = sub i32 %x, 1\n  ret i32 %r\n}\n\ndefine i32 @worker(i32 %x) {\nentry:\n  %r = call i32 @helper(i32 %x)\n  ret i32 %r\n}",
            "c",
        );
        vec![a, b, c]
    }

    fn graph() -> CallGraph {
        CallGraph::resolve(&CorpusCallIndex::build(&diamond_corpus()))
    }

    #[test]
    fn resolution_prefers_own_module_then_first_external() {
        let g = graph();
        assert_eq!(g.num_nodes(), 7);
        // c's worker binds to c's *internal* helper, not a's external one.
        let worker = g.node_id(2, "worker").unwrap();
        let c_helper = g.node_id(2, "helper").unwrap();
        assert!(g
            .edges
            .iter()
            .any(|e| e.caller == worker && e.callee == c_helper));
        // b's entry_b binds shared to b's own copy and main to a's.
        let entry_b = g.node_id(1, "entry_b").unwrap();
        let b_shared = g.node_id(1, "shared").unwrap();
        let a_main = g.node_id(0, "main").unwrap();
        assert!(g
            .edges
            .iter()
            .any(|e| e.caller == entry_b && e.callee == b_shared));
        assert!(g
            .edges
            .iter()
            .any(|e| e.caller == entry_b && e.callee == a_main));
        // a's main calls helper twice: one edge, count 2.
        let a_helper = g.node_id(0, "helper").unwrap();
        let edge = g
            .edges
            .iter()
            .find(|e| e.caller == a_main && e.callee == a_helper)
            .unwrap();
        assert_eq!(edge.count, 2);
        // ext_sink has no definition: an external site, no edge.
        assert_eq!(g.num_external_sites(), 1);
        assert_eq!(g.num_resolved_sites(), 5);
    }

    #[test]
    fn locality_counts_static_sites_per_side() {
        let g = graph();
        let loc = g.locality();
        let a_helper = g.node_id(0, "helper").unwrap();
        assert_eq!(loc[a_helper].intra_callers, 2);
        assert_eq!(loc[a_helper].cross_callers, 0);
        assert_eq!(loc[a_helper].external_callees, 1);
        assert_eq!(loc[a_helper].coupling(), 2);
        let a_main = g.node_id(0, "main").unwrap();
        assert_eq!(loc[a_main].intra_callees, 2);
        assert_eq!(loc[a_main].cross_callers, 1);
        assert_eq!(loc[a_main].coupling(), 2);
        let b_entry = g.node_id(1, "entry_b").unwrap();
        assert_eq!(loc[b_entry].intra_callees, 1);
        assert_eq!(loc[b_entry].cross_callees, 1);
        assert_eq!(loc[b_entry].coupling(), 1);
    }

    #[test]
    fn self_calls_do_not_count_toward_coupling() {
        let m = named(
            "define i32 @rec(i32 %x) {\nentry:\n  %r = call i32 @rec(i32 %x)\n  ret i32 %r\n}",
            "m",
        );
        let g = CallGraph::resolve(&CorpusCallIndex::build(&[m]));
        assert_eq!(g.num_edges(), 1, "the self-edge itself is kept");
        let loc = g.locality();
        assert_eq!(loc[0], Locality::default());
    }

    #[test]
    fn condensation_orders_callees_before_callers() {
        let g = graph();
        let cond = g.condensation();
        assert_eq!(cond.components.len(), g.num_nodes(), "no cycles here");
        // Reverse topological: every edge goes from a later component to an
        // earlier one.
        for (caller_c, callee_c) in &cond.edges {
            assert!(caller_c > callee_c, "{caller_c} -> {callee_c}");
        }
    }

    #[test]
    fn region_link_inputs_cover_calls_and_shared_definitions() {
        let g = graph();
        assert_eq!(g.cross_module_links(), vec![(0, 1)]);
        assert_eq!(
            g.shared_definition_links(),
            vec![(1, 2)],
            "b and c both define @shared externally"
        );
    }
}
