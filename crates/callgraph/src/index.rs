//! The serializable call-site index: per-module summaries of who calls what.
//!
//! Scanning instructions is the expensive part of call-graph construction, so
//! it is split off into a per-module summary keyed by
//! [`ssa_ir::Module::content_hash`] — the same incremental-rebuild discipline
//! as the `xmerge` summary index. A fixpoint round re-summarizes only the
//! modules a commit touched; symbol resolution (which depends on *other*
//! modules) is redone cheaply from the summaries by
//! [`crate::CallGraph::resolve`].

use rayon::prelude::*;
use ssa_ir::{Linkage, Module};

/// The static call sites of one defined function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionCalls {
    /// Symbol name of the caller.
    pub name: String,
    /// Linkage of the caller (resolution needs to know which definitions are
    /// externally visible).
    pub linkage: Linkage,
    /// `(callee symbol, static call-site count)`, sorted by callee name.
    pub callees: Vec<(String, u32)>,
}

/// The call-site summary of one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleCalls {
    /// Module name.
    pub module: String,
    /// Content hash of the module the summary was computed from
    /// ([`Module::content_hash`]); zero disables reuse.
    pub content_hash: u64,
    /// One entry per defined function, in module order.
    pub functions: Vec<FunctionCalls>,
}

impl ModuleCalls {
    /// Summarizes every function of `module`.
    pub fn build(module: &Module) -> ModuleCalls {
        ModuleCalls {
            module: module.name.clone(),
            content_hash: module.content_hash(),
            functions: module
                .functions()
                .iter()
                .map(|f| {
                    let mut callees: Vec<(String, u32)> = f.callee_counts().into_iter().collect();
                    callees.sort_unstable();
                    FunctionCalls {
                        name: f.name.clone(),
                        linkage: f.linkage,
                        callees,
                    }
                })
                .collect(),
        }
    }
}

/// How much of an incremental rebuild was served from a prior index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallIndexReuse {
    /// Modules whose summaries were copied from the prior index unchanged.
    pub reused: usize,
    /// Modules that were (re-)scanned.
    pub refreshed: usize,
}

impl CallIndexReuse {
    /// Folds another rebuild's reuse statistics into this one.
    pub fn absorb(&mut self, other: CallIndexReuse) {
        self.reused += other.reused;
        self.refreshed += other.refreshed;
    }
}

/// The whole-corpus call-site index: per-module summaries in corpus order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusCallIndex {
    /// One summary per module.
    pub modules: Vec<ModuleCalls>,
}

impl CorpusCallIndex {
    /// Builds the index of a whole corpus, scanning modules in parallel.
    pub fn build(modules: &[Module]) -> CorpusCallIndex {
        CorpusCallIndex::build_incremental(modules, None).0
    }

    /// Builds the index, reusing `prior` summaries for every module whose
    /// content hash is unchanged (matched by module name). Only changed or
    /// unknown modules are re-scanned — in parallel.
    pub fn build_incremental(
        modules: &[Module],
        prior: Option<&CorpusCallIndex>,
    ) -> (CorpusCallIndex, CallIndexReuse) {
        let prior_by_name: std::collections::HashMap<&str, &ModuleCalls> = prior
            .map(|p| p.modules.iter().map(|m| (m.module.as_str(), m)).collect())
            .unwrap_or_default();
        let per_module: Vec<(bool, ModuleCalls)> = modules
            .par_iter()
            .map(|m| {
                let hash = m.content_hash();
                if let Some(prev) = prior_by_name.get(m.name.as_str()) {
                    if prev.content_hash == hash && hash != 0 {
                        return (true, (*prev).clone());
                    }
                }
                (false, ModuleCalls::build(m))
            })
            .collect();
        let mut reuse = CallIndexReuse::default();
        let mut index = CorpusCallIndex::default();
        for (reused, mc) in per_module {
            if reused {
                reuse.reused += 1;
            } else {
                reuse.refreshed += 1;
            }
            index.modules.push(mc);
        }
        (index, reuse)
    }

    /// Number of summarized functions across the corpus.
    pub fn num_functions(&self) -> usize {
        self.modules.iter().map(|m| m.functions.len()).sum()
    }

    /// Total static call sites across the corpus.
    pub fn num_call_sites(&self) -> u64 {
        self.modules
            .iter()
            .flat_map(|m| &m.functions)
            .flat_map(|f| &f.callees)
            .map(|(_, count)| u64::from(*count))
            .sum()
    }

    /// Serializes the index to a versioned line format, written alongside the
    /// `xmerge` summary index so later runs reload the call graph without
    /// re-scanning any IR.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("callgraph v1\n");
        for m in &self.modules {
            out.push_str(&format!("module {} hash={:x}\n", m.module, m.content_hash));
            for f in &m.functions {
                match f.linkage {
                    Linkage::External => out.push_str(&format!("fn {}\n", f.name)),
                    Linkage::Internal => out.push_str(&format!("fn {} internal\n", f.name)),
                }
                for (callee, count) in &f.callees {
                    out.push_str(&format!("call {callee} x{count}\n"));
                }
            }
        }
        out
    }

    /// Parses an index serialized by [`CorpusCallIndex::serialize`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn deserialize(text: &str) -> Result<CorpusCallIndex, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty call-graph file")?;
        if header.trim() != "callgraph v1" {
            return Err(format!("bad header: {header:?}"));
        }
        let mut index = CorpusCallIndex::default();
        for (lineno, line) in lines {
            let bad = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("module ") {
                // The serializer always appends ` hash=<hex>` last, so the
                // rightmost occurrence is the real one even for pathological
                // module names; junk after it is corruption, not a name.
                let (name, hash) = match rest.rsplit_once(" hash=") {
                    Some((head, hex)) => match u64::from_str_radix(hex, 16) {
                        Ok(h) => (head, h),
                        Err(_) => return Err(bad("bad module hash")),
                    },
                    None => (rest, 0),
                };
                index.modules.push(ModuleCalls {
                    module: name.trim().to_string(),
                    content_hash: hash,
                    functions: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("fn ") {
                let module = index
                    .modules
                    .last_mut()
                    .ok_or_else(|| bad("fn before any module"))?;
                let (name, linkage) = match rest.strip_suffix(" internal") {
                    Some(head) => (head, Linkage::Internal),
                    None => (rest, Linkage::External),
                };
                module.functions.push(FunctionCalls {
                    name: name.trim().to_string(),
                    linkage,
                    callees: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("call ") {
                let function = index
                    .modules
                    .last_mut()
                    .and_then(|m| m.functions.last_mut())
                    .ok_or_else(|| bad("call before any fn"))?;
                let (callee, count) = rest
                    .rsplit_once(" x")
                    .ok_or_else(|| bad("call without ' x<count>'"))?;
                let count: u32 = count.parse().map_err(|_| bad("bad call count"))?;
                function.callees.push((callee.trim().to_string(), count));
            } else {
                return Err(bad("unrecognized line"));
            }
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_ir::parse_module;

    fn corpus() -> Vec<Module> {
        let mut a = parse_module(
            "define i32 @main_a(i32 %x) {\nentry:\n  %r = call i32 @shared(i32 %x)\n  %s = call i32 @shared(i32 %r)\n  ret i32 %s\n}\n\ndefine internal i32 @shared(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
        )
        .unwrap();
        a.name = "a".to_string();
        let mut b = parse_module(
            "define i32 @main_b(i32 %x) {\nentry:\n  %r = call i32 @ext(i32 %x)\n  ret i32 %r\n}",
        )
        .unwrap();
        b.name = "b".to_string();
        vec![a, b]
    }

    #[test]
    fn summaries_count_static_sites_and_carry_linkage() {
        let index = CorpusCallIndex::build(&corpus());
        assert_eq!(index.modules.len(), 2);
        assert_eq!(index.num_functions(), 3);
        assert_eq!(index.num_call_sites(), 3);
        let main_a = &index.modules[0].functions[0];
        assert_eq!(main_a.callees, vec![("shared".to_string(), 2)]);
        assert_eq!(index.modules[0].functions[1].linkage, Linkage::Internal);
    }

    #[test]
    fn serialization_round_trips() {
        let index = CorpusCallIndex::build(&corpus());
        let text = index.serialize();
        let reloaded = CorpusCallIndex::deserialize(&text).unwrap();
        assert_eq!(index, reloaded);
        assert_eq!(reloaded.serialize(), text);
    }

    #[test]
    fn deserialize_rejects_malformed_input() {
        assert!(CorpusCallIndex::deserialize("").is_err());
        assert!(CorpusCallIndex::deserialize("bogus\n").is_err());
        let orphan_fn = "callgraph v1\nfn f\n";
        assert!(CorpusCallIndex::deserialize(orphan_fn)
            .unwrap_err()
            .contains("fn before any module"));
        let orphan_call = "callgraph v1\nmodule m hash=0\ncall f x1\n";
        assert!(CorpusCallIndex::deserialize(orphan_call)
            .unwrap_err()
            .contains("call before any fn"));
        let bad_count = "callgraph v1\nmodule m hash=0\nfn f\ncall g xNaN\n";
        assert!(CorpusCallIndex::deserialize(bad_count).is_err());
        // A corrupted module hash is an error, not a silently mangled name
        // (which would defeat reuse without the CLI's unreadable-file
        // warning ever firing).
        let bad_hash = "callgraph v1\nmodule m hash=12g4\nfn f\n";
        assert!(CorpusCallIndex::deserialize(bad_hash)
            .unwrap_err()
            .contains("bad module hash"));
        // A hash-less module line still parses (hash 0 = never reused).
        let no_hash = "callgraph v1\nmodule plain\nfn f\n";
        let parsed = CorpusCallIndex::deserialize(no_hash).unwrap();
        assert_eq!(parsed.modules[0].module, "plain");
        assert_eq!(parsed.modules[0].content_hash, 0);
    }

    #[test]
    fn incremental_rebuild_reuses_unchanged_modules() {
        let mut modules = corpus();
        let (full, reuse) = CorpusCallIndex::build_incremental(&modules, None);
        assert_eq!(
            reuse,
            CallIndexReuse {
                reused: 0,
                refreshed: 2
            }
        );
        let (again, reuse) = CorpusCallIndex::build_incremental(&modules, Some(&full));
        assert_eq!(
            reuse,
            CallIndexReuse {
                reused: 2,
                refreshed: 0
            }
        );
        assert_eq!(again, full);
        // Function reordering is reuse-safe: the content hash is
        // order-independent, and static call counts do not depend on order.
        modules[0].functions_mut().reverse();
        let (reordered, reuse) = CorpusCallIndex::build_incremental(&modules, Some(&full));
        assert_eq!(reuse.reused, 2, "reordering must not invalidate the cache");
        assert_eq!(reordered, full, "reused summaries keep their prior order");
        // A genuine content change re-scans exactly the touched module.
        let f = modules[1].function_mut("main_b").unwrap();
        f.set_name("main_b2");
        let (_, reuse) = CorpusCallIndex::build_incremental(&modules, Some(&full));
        assert_eq!(
            reuse,
            CallIndexReuse {
                reused: 1,
                refreshed: 1
            }
        );
    }
}
