//! # `ssa_interp` — a reference interpreter for [`ssa_ir`]
//!
//! The interpreter serves two purposes in the reproduction of *Effective
//! Function Merging in the SSA Form* (PLDI 2020):
//!
//! 1. **Differential testing.** A merged function must behave exactly like the
//!    first input function when called with `fid = false` (plus the original
//!    arguments) and exactly like the second with `fid = true`. The test
//!    suites execute both and compare return values *and* the trace of
//!    external calls.
//! 2. **Runtime-overhead measurement (Figure 25).** Dynamic instruction counts
//!    over the same inputs stand in for wall-clock runtime on the paper's
//!    testbed.
//!
//! External (declared-only) functions are modelled as deterministic pure
//! functions of their name and arguments, so any two executions that perform
//! the same external call sequence observe the same values.

use ssa_ir::{
    BinOp, CastKind, Constant, Function, ICmpPred, InstId, InstKind, Module, Type, Value,
};
use std::collections::HashMap;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IValue {
    /// An integer of a given bit width.
    Int { bits: u16, value: i64 },
    /// A 64-bit float.
    Float(f64),
    /// A pointer into the interpreter's memory (slot index).
    Ptr(usize),
    /// The undefined value; using it in arithmetic yields zero, matching the
    /// "never actually used" guarantee SalSSA relies on.
    Undef,
}

impl IValue {
    /// Boolean runtime value.
    pub fn bool(v: bool) -> IValue {
        IValue::Int {
            bits: 1,
            value: i64::from(v),
        }
    }

    /// 32-bit integer runtime value.
    pub fn i32(v: i32) -> IValue {
        IValue::Int {
            bits: 32,
            value: i64::from(v),
        }
    }

    /// 64-bit integer runtime value.
    pub fn i64(v: i64) -> IValue {
        IValue::Int { bits: 64, value: v }
    }

    /// Interprets the value as an integer (undef reads as 0).
    pub fn as_int(self) -> i64 {
        match self {
            IValue::Int { value, .. } => value,
            IValue::Ptr(p) => p as i64,
            IValue::Float(f) => f as i64,
            IValue::Undef => 0,
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(self) -> bool {
        self.as_int() != 0
    }
}

impl fmt::Display for IValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IValue::Int { value, .. } => write!(f, "{value}"),
            IValue::Float(v) => write!(f, "{v}"),
            IValue::Ptr(p) => write!(f, "ptr#{p}"),
            IValue::Undef => write!(f, "undef"),
        }
    }
}

/// One recorded call to an external (declared-only) function.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalCall {
    /// Callee name.
    pub name: String,
    /// Argument values at the call.
    pub args: Vec<i64>,
    /// The value the model returned.
    pub result: i64,
}

/// Errors that abort interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The dynamic instruction budget was exhausted (probable infinite loop).
    StepLimit,
    /// Call stack exceeded the recursion limit.
    RecursionLimit,
    /// An `unreachable` instruction was executed.
    Unreachable,
    /// A memory access was out of bounds or through a bad pointer.
    BadPointer,
    /// The named function was not found in the module.
    UnknownFunction(String),
    /// A block ended without a terminator.
    MissingTerminator,
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "dynamic instruction budget exhausted"),
            InterpError::RecursionLimit => write!(f, "recursion limit exceeded"),
            InterpError::Unreachable => write!(f, "executed unreachable"),
            InterpError::BadPointer => write!(f, "bad pointer dereference"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function @{n}"),
            InterpError::MissingTerminator => write!(f, "block without terminator"),
            InterpError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The result of executing a function.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Returned value (`None` for void functions).
    pub ret: Option<IValue>,
    /// Dynamic instruction count (including callees).
    pub steps: u64,
    /// Trace of calls to external functions, in execution order.
    pub external_calls: Vec<ExternalCall>,
}

/// Interpreter over one module.
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    /// Maximum dynamic instructions before aborting.
    pub step_limit: u64,
    /// Maximum call depth.
    pub recursion_limit: usize,
    memory: Vec<IValue>,
    steps: u64,
    external_calls: Vec<ExternalCall>,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter for `module` with default limits.
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter {
            module,
            step_limit: 1_000_000,
            recursion_limit: 64,
            memory: Vec::new(),
            steps: 0,
            external_calls: Vec::new(),
        }
    }

    /// Runs the named function with integer arguments, returning the outcome.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] when execution aborts (step limit, bad
    /// memory access, unknown callee, ...).
    pub fn run(&mut self, name: &str, args: &[i64]) -> Result<ExecOutcome, InterpError> {
        self.memory.clear();
        self.steps = 0;
        self.external_calls.clear();
        let function = self
            .module
            .function(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?;
        let arg_values: Vec<IValue> = function
            .params
            .iter()
            .zip(args.iter().copied().chain(std::iter::repeat(0)))
            .map(|(ty, v)| match ty {
                Type::Float => IValue::Float(v as f64),
                Type::Ptr => IValue::Ptr(self.alloc_external(v)),
                Type::Int(bits) => IValue::Int {
                    bits: *bits,
                    value: truncate(*bits, v),
                },
                Type::Void => IValue::Undef,
            })
            .collect();
        let ret = self.call_function(function, &arg_values, 0)?;
        Ok(ExecOutcome {
            ret,
            steps: self.steps,
            external_calls: std::mem::take(&mut self.external_calls),
        })
    }

    fn alloc_external(&mut self, seed: i64) -> usize {
        // Give pointer arguments a small backing buffer with deterministic
        // contents derived from the seed.
        let base = self.memory.len();
        for i in 0..16 {
            self.memory.push(IValue::i64(mix(seed, i)));
        }
        base
    }

    fn call_function(
        &mut self,
        function: &Function,
        args: &[IValue],
        depth: usize,
    ) -> Result<Option<IValue>, InterpError> {
        if depth > self.recursion_limit {
            return Err(InterpError::RecursionLimit);
        }
        let mut regs: HashMap<InstId, IValue> = HashMap::new();
        let mut block = function.entry();
        let mut prev_block = None;
        loop {
            // Phis first, evaluated simultaneously from the edge taken.
            let phis = function.block(block).phis.clone();
            let mut phi_values = Vec::with_capacity(phis.len());
            for &phi in &phis {
                self.tick()?;
                let InstKind::Phi { incomings } = &function.inst(phi).kind else {
                    continue;
                };
                let incoming = prev_block
                    .and_then(|p| incomings.iter().find(|(_, b)| *b == p))
                    .map(|(v, _)| self.value(&regs, args, *v))
                    .unwrap_or(IValue::Undef);
                phi_values.push((phi, incoming));
            }
            for (phi, v) in phi_values {
                regs.insert(phi, v);
            }

            // Block body.
            for &inst in &function.block(block).insts {
                self.tick()?;
                let result = self.exec_inst(function, &mut regs, args, inst, depth)?;
                if let Some(v) = result {
                    regs.insert(inst, v);
                }
            }

            // Terminator.
            let term = function
                .block(block)
                .term
                .ok_or(InterpError::MissingTerminator)?;
            self.tick()?;
            match function.inst(term).kind.clone() {
                InstKind::Br { dest } => {
                    prev_block = Some(block);
                    block = dest;
                }
                InstKind::CondBr {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let c = self.value(&regs, args, cond).as_bool();
                    prev_block = Some(block);
                    block = if c { if_true } else { if_false };
                }
                InstKind::Switch {
                    value,
                    default,
                    cases,
                } => {
                    let v = self.value(&regs, args, value).as_int();
                    prev_block = Some(block);
                    block = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(default);
                }
                InstKind::Ret { value } => {
                    return Ok(value.map(|v| self.value(&regs, args, v)));
                }
                InstKind::Invoke {
                    callee,
                    args: call_args,
                    normal,
                    ..
                } => {
                    let argv: Vec<IValue> = call_args
                        .iter()
                        .map(|a| self.value(&regs, args, *a))
                        .collect();
                    // The model never throws, so invokes always continue to the
                    // normal destination.
                    let result = self.dispatch_call(&callee, &argv, depth)?;
                    if let Some(v) = result {
                        regs.insert(term, v);
                    }
                    prev_block = Some(block);
                    block = normal;
                }
                InstKind::Resume { .. } => return Ok(None),
                InstKind::Unreachable => return Err(InterpError::Unreachable),
                _ => return Err(InterpError::MissingTerminator),
            }
        }
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            Err(InterpError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn value(&self, regs: &HashMap<InstId, IValue>, args: &[IValue], value: Value) -> IValue {
        match value {
            Value::Inst(id) => regs.get(&id).copied().unwrap_or(IValue::Undef),
            Value::Arg(i) => args.get(i as usize).copied().unwrap_or(IValue::Undef),
            Value::Const(Constant::Int { bits, value }) => IValue::Int { bits, value },
            Value::Const(Constant::Float(bits)) => IValue::Float(f64::from_bits(bits)),
            Value::Const(Constant::Undef(_)) => IValue::Undef,
            Value::Const(Constant::Null) => IValue::Ptr(usize::MAX),
        }
    }

    fn exec_inst(
        &mut self,
        function: &Function,
        regs: &mut HashMap<InstId, IValue>,
        args: &[IValue],
        inst: InstId,
        depth: usize,
    ) -> Result<Option<IValue>, InterpError> {
        let data = function.inst(inst);
        let kind = data.kind.clone();
        let ty = data.ty;
        Ok(match kind {
            InstKind::Binary { op, lhs, rhs } => {
                let l = self.value(regs, args, lhs);
                let r = self.value(regs, args, rhs);
                Some(self.binary(op, l, r, ty)?)
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let l = self.value(regs, args, lhs).as_int();
                let r = self.value(regs, args, rhs).as_int();
                Some(IValue::bool(icmp(pred, l, r)))
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.value(regs, args, cond).as_bool();
                Some(if c {
                    self.value(regs, args, if_true)
                } else {
                    self.value(regs, args, if_false)
                })
            }
            InstKind::Call {
                callee,
                args: call_args,
            } => {
                let argv: Vec<IValue> = call_args
                    .iter()
                    .map(|a| self.value(regs, args, *a))
                    .collect();
                self.dispatch_call(&callee, &argv, depth)?
            }
            InstKind::LandingPad => Some(IValue::Ptr(usize::MAX)),
            InstKind::Alloca { .. } => {
                self.memory.push(IValue::Undef);
                Some(IValue::Ptr(self.memory.len() - 1))
            }
            InstKind::Load { ptr } => {
                let p = match self.value(regs, args, ptr) {
                    IValue::Ptr(p) => p,
                    other => other.as_int() as usize,
                };
                Some(*self.memory.get(p).ok_or(InterpError::BadPointer)?)
            }
            InstKind::Store { value, ptr } => {
                let p = match self.value(regs, args, ptr) {
                    IValue::Ptr(p) => p,
                    other => other.as_int() as usize,
                };
                let val = self.value(regs, args, value);
                *self.memory.get_mut(p).ok_or(InterpError::BadPointer)? = val;
                None
            }
            InstKind::Gep {
                base,
                index,
                stride,
            } => {
                let b = match self.value(regs, args, base) {
                    IValue::Ptr(p) => p,
                    other => other.as_int() as usize,
                };
                let idx = self.value(regs, args, index).as_int();
                // Model GEP at slot granularity: one slot per `stride` bytes.
                let _ = stride;
                let addr = (b as i64 + idx).max(0) as usize;
                Some(IValue::Ptr(addr))
            }
            InstKind::Cast { kind, value } => {
                let v = self.value(regs, args, value);
                Some(self.cast(kind, v, ty))
            }
            InstKind::Phi { .. } => Some(IValue::Undef),
            other if other.is_terminator() => None,
            _ => None,
        })
    }

    fn dispatch_call(
        &mut self,
        callee: &str,
        args: &[IValue],
        depth: usize,
    ) -> Result<Option<IValue>, InterpError> {
        if let Some(function) = self.module.function(callee) {
            return self.call_function(function, args, depth + 1);
        }
        // External model: a deterministic pure hash of name and arguments.
        let arg_ints: Vec<i64> = args.iter().map(|a| a.as_int()).collect();
        let mut h: i64 = 0x7F4A_7C15;
        for b in callee.bytes() {
            h = mix(h, i64::from(b));
        }
        for &a in &arg_ints {
            h = mix(h, a);
        }
        // Keep the result in a friendly range so later arithmetic stays tame.
        let result = (h & 0xFFFF).abs();
        self.external_calls.push(ExternalCall {
            name: callee.to_string(),
            args: arg_ints,
            result,
        });
        Ok(Some(IValue::Int {
            bits: 64,
            value: result,
        }))
    }

    fn binary(&self, op: BinOp, lhs: IValue, rhs: IValue, ty: Type) -> Result<IValue, InterpError> {
        if op.is_float() {
            let l = match lhs {
                IValue::Float(f) => f,
                other => other.as_int() as f64,
            };
            let r = match rhs {
                IValue::Float(f) => f,
                other => other.as_int() as f64,
            };
            let v = match op {
                BinOp::FAdd => l + r,
                BinOp::FSub => l - r,
                BinOp::FMul => l * r,
                BinOp::FDiv => l / r,
                _ => unreachable!(),
            };
            return Ok(IValue::Float(v));
        }
        let bits = if ty.is_int() { ty.bits() } else { 64 };
        let l = lhs.as_int();
        let r = rhs.as_int();
        let value = match op {
            BinOp::Add => l.wrapping_add(r),
            BinOp::Sub => l.wrapping_sub(r),
            BinOp::Mul => l.wrapping_mul(r),
            BinOp::SDiv => {
                if r == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                l.wrapping_div(r)
            }
            BinOp::UDiv => {
                if r == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                ((l as u64) / (r as u64)) as i64
            }
            BinOp::SRem => {
                if r == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                l.wrapping_rem(r)
            }
            BinOp::URem => {
                if r == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                ((l as u64) % (r as u64)) as i64
            }
            BinOp::And => l & r,
            BinOp::Or => l | r,
            BinOp::Xor => l ^ r,
            BinOp::Shl => l.wrapping_shl(r as u32 & 63),
            BinOp::LShr => ((l as u64).wrapping_shr(r as u32 & 63)) as i64,
            BinOp::AShr => l.wrapping_shr(r as u32 & 63),
            _ => unreachable!(),
        };
        Ok(IValue::Int {
            bits,
            value: truncate(bits, value),
        })
    }

    fn cast(&self, kind: CastKind, value: IValue, to_ty: Type) -> IValue {
        match kind {
            CastKind::SIToFP => IValue::Float(value.as_int() as f64),
            CastKind::FPToSI => IValue::i64(match value {
                IValue::Float(f) => f as i64,
                other => other.as_int(),
            }),
            CastKind::IntToPtr => IValue::Ptr(value.as_int() as usize),
            CastKind::Trunc
            | CastKind::ZExt
            | CastKind::SExt
            | CastKind::Bitcast
            | CastKind::PtrToInt => {
                let bits = if to_ty.is_int() { to_ty.bits() } else { 64 };
                IValue::Int {
                    bits,
                    value: truncate(bits, value.as_int()),
                }
            }
        }
    }
}

fn icmp(pred: ICmpPred, l: i64, r: i64) -> bool {
    let (lu, ru) = (l as u64, r as u64);
    match pred {
        ICmpPred::Eq => l == r,
        ICmpPred::Ne => l != r,
        ICmpPred::Slt => l < r,
        ICmpPred::Sle => l <= r,
        ICmpPred::Sgt => l > r,
        ICmpPred::Sge => l >= r,
        ICmpPred::Ult => lu < ru,
        ICmpPred::Ule => lu <= ru,
        ICmpPred::Ugt => lu > ru,
        ICmpPred::Uge => lu >= ru,
    }
}

fn truncate(bits: u16, value: i64) -> i64 {
    if bits >= 64 {
        value
    } else {
        let m = (1i64 << bits) - 1;
        let v = value & m;
        let sign = 1i64 << (bits - 1);
        if bits > 1 && (v & sign) != 0 {
            v | !m
        } else {
            v
        }
    }
}

fn mix(a: i64, b: i64) -> i64 {
    let mut x = (a ^ b).wrapping_mul(0x10000_0001B3);
    x ^= x >> 33;
    x.wrapping_mul(0x51AF_D7ED_558C_CD1F_u64 as i64)
}

/// Runs `function_name` in `module` and returns the outcome; convenience used
/// by tests and benches.
///
/// # Errors
///
/// Propagates any [`InterpError`] from the run.
pub fn run_function(
    module: &Module,
    function_name: &str,
    args: &[i64],
) -> Result<ExecOutcome, InterpError> {
    Interpreter::new(module).run(function_name, args)
}

/// Checks that two functions in (possibly different) modules behave
/// identically on the given inputs: same return value and same external call
/// trace.
///
/// # Errors
///
/// Returns a description of the first divergence (or of an interpreter error).
pub fn check_equivalent(
    module_a: &Module,
    name_a: &str,
    args_a: &[i64],
    module_b: &Module,
    name_b: &str,
    args_b: &[i64],
) -> Result<(), String> {
    let ra = run_function(module_a, name_a, args_a);
    let rb = run_function(module_b, name_b, args_b);
    compare_outcomes(name_a, ra, name_b, rb)
}

/// Why a fuel-limited oracle run failed to validate a merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleFailure {
    /// The two executions observably diverged.
    Mismatch(String),
    /// An execution exhausted the fuel budget before a verdict was reached;
    /// the caller should refuse the commit conservatively.
    Timeout,
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFailure::Mismatch(m) => write!(f, "{m}"),
            OracleFailure::Timeout => {
                write!(f, "differential oracle exhausted its fuel budget")
            }
        }
    }
}

fn run_with_fuel(
    module: &Module,
    function_name: &str,
    args: &[i64],
    fuel: Option<u64>,
) -> Result<ExecOutcome, InterpError> {
    let mut interp = Interpreter::new(module);
    if let Some(fuel) = fuel {
        interp.step_limit = fuel;
    }
    interp.run(function_name, args)
}

/// [`check_equivalent`] under an explicit step budget. With `fuel: None` the
/// default interpreter limit applies and a double step-limit hit still counts
/// as equivalent (legacy behavior); with an explicit budget, hitting it on
/// either side is a [`OracleFailure::Timeout`] — no verdict, not a pass.
pub fn check_equivalent_with_fuel(
    module_a: &Module,
    name_a: &str,
    args_a: &[i64],
    module_b: &Module,
    name_b: &str,
    args_b: &[i64],
    fuel: Option<u64>,
) -> Result<(), OracleFailure> {
    let ra = run_with_fuel(module_a, name_a, args_a, fuel);
    let rb = run_with_fuel(module_b, name_b, args_b, fuel);
    if fuel.is_some()
        && (matches!(ra, Err(InterpError::StepLimit)) || matches!(rb, Err(InterpError::StepLimit)))
    {
        return Err(OracleFailure::Timeout);
    }
    compare_outcomes(name_a, ra, name_b, rb).map_err(OracleFailure::Mismatch)
}

fn compare_outcomes(
    name_a: &str,
    ra: Result<ExecOutcome, InterpError>,
    name_b: &str,
    rb: Result<ExecOutcome, InterpError>,
) -> Result<(), String> {
    // Two executions that fail in the same way (e.g. both exhaust the step
    // budget because the source program does not terminate under the external
    // model) are considered equivalent.
    if let (Err(ea), Err(eb)) = (&ra, &rb) {
        return if ea == eb {
            Ok(())
        } else {
            Err(format!("executions fail differently: {ea} vs {eb}"))
        };
    }
    let a = ra.map_err(|e| format!("{name_a}: {e}"))?;
    let b = rb.map_err(|e| format!("{name_b}: {e}"))?;
    let ra = a.ret.map(|v| v.as_int());
    let rb = b.ret.map(|v| v.as_int());
    if ra != rb {
        return Err(format!("return values differ: {ra:?} vs {rb:?}"));
    }
    if a.external_calls != b.external_calls {
        return Err(format!(
            "external call traces differ:\n  {:?}\nvs\n  {:?}",
            a.external_calls, b.external_calls
        ));
    }
    Ok(())
}

/// Differentially tests that `name` behaves identically in `before` and
/// `after` on deterministically sampled random inputs (plus the all-zeros and
/// all-ones edge vectors). This is the semantic oracle the merge drivers run,
/// opt-in, on every committed merge: the merged-and-thunked module must be
/// observationally equivalent to the original.
///
/// Sampling is a pure function of `(name, seed, sample index)`, so a reported
/// mismatch reproduces exactly.
///
/// # Errors
///
/// Returns the first divergence found, prefixed with the offending argument
/// vector; or an error when `name` is not defined in `before`.
pub fn differential_check(
    before: &Module,
    after: &Module,
    name: &str,
    samples: usize,
    seed: u64,
) -> Result<(), String> {
    differential_check_with_fuel(before, after, name, samples, seed, None)
        .map_err(|failure| failure.to_string())
}

/// [`differential_check`] under an explicit per-execution step budget: any
/// sampled run that exhausts `fuel` steps yields [`OracleFailure::Timeout`]
/// instead of a verdict, bounding worst-case oracle latency per candidate.
/// `fuel: None` reproduces [`differential_check`] exactly.
///
/// # Errors
///
/// Returns the first divergence or timeout found; or a mismatch when `name`
/// is not defined in `before`.
pub fn differential_check_with_fuel(
    before: &Module,
    after: &Module,
    name: &str,
    samples: usize,
    seed: u64,
    fuel: Option<u64>,
) -> Result<(), OracleFailure> {
    let function = before.function(name).ok_or_else(|| {
        OracleFailure::Mismatch(format!("@{name} is not defined in the original module"))
    })?;
    let num_args = function.params.len();
    let mut state = seed;
    for b in name.bytes() {
        state = state.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
    }
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut vectors: Vec<Vec<i64>> = vec![vec![0; num_args], vec![1; num_args]];
    for _ in 0..samples {
        // Small magnitudes keep comparisons and loop bounds on interesting
        // paths instead of saturating everything.
        vectors.push((0..num_args).map(|_| (next() % 257) as i64 - 128).collect());
    }
    for args in &vectors {
        check_equivalent_with_fuel(before, name, args, after, name, args, fuel).map_err(
            |failure| match failure {
                OracleFailure::Mismatch(e) => {
                    OracleFailure::Mismatch(format!("args {args:?}: {e}"))
                }
                OracleFailure::Timeout => OracleFailure::Timeout,
            },
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_ir::parse_module;

    fn module(text: &str) -> Module {
        parse_module(text).unwrap()
    }

    #[test]
    fn straight_line_arithmetic() {
        let m = module("define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 5\n  %b = mul i32 %a, 2\n  ret i32 %b\n}");
        let out = run_function(&m, "f", &[10]).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), 30);
        assert!(out.steps >= 3);
    }

    #[test]
    fn branches_and_phis() {
        let m = module(
            r#"
define i32 @abs(i32 %x) {
entry:
  %neg = icmp slt i32 %x, 0
  br i1 %neg, label %n, label %p
n:
  %m = sub i32 0, %x
  br label %join
p:
  br label %join
join:
  %r = phi i32 [ %m, %n ], [ %x, %p ]
  ret i32 %r
}
"#,
        );
        assert_eq!(
            run_function(&m, "abs", &[-7])
                .unwrap()
                .ret
                .unwrap()
                .as_int(),
            7
        );
        assert_eq!(
            run_function(&m, "abs", &[9]).unwrap().ret.unwrap().as_int(),
            9
        );
    }

    #[test]
    fn loops_terminate_and_count_steps() {
        let m = module(
            r#"
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"#,
        );
        let out = run_function(&m, "sum", &[10]).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), 45);
        let shorter = run_function(&m, "sum", &[3]).unwrap();
        assert!(shorter.steps < out.steps);
    }

    #[test]
    fn memory_operations() {
        let m = module(
            r#"
define i32 @mem(i32 %x) {
entry:
  %slot = alloca i32
  store i32 %x, ptr %slot
  %v = load i32, ptr %slot
  %r = add i32 %v, 1
  ret i32 %r
}
"#,
        );
        assert_eq!(
            run_function(&m, "mem", &[41])
                .unwrap()
                .ret
                .unwrap()
                .as_int(),
            42
        );
    }

    #[test]
    fn external_calls_are_deterministic_and_traced() {
        let m = module(
            "define i64 @f(i64 %x) {\nentry:\n  %a = call i64 @ext(i64 %x)\n  %b = call i64 @ext(i64 %x)\n  %s = add i64 %a, %b\n  ret i64 %s\n}",
        );
        let o1 = run_function(&m, "f", &[3]).unwrap();
        let o2 = run_function(&m, "f", &[3]).unwrap();
        assert_eq!(o1.ret, o2.ret);
        assert_eq!(o1.external_calls.len(), 2);
        assert_eq!(o1.external_calls, o2.external_calls);
        assert_eq!(o1.external_calls[0].result, o1.external_calls[1].result);
        let o3 = run_function(&m, "f", &[4]).unwrap();
        assert_ne!(o1.ret, o3.ret);
    }

    #[test]
    fn internal_calls_are_executed() {
        let m = module(
            r#"
define i32 @callee(i32 %x) {
entry:
  %r = mul i32 %x, 3
  ret i32 %r
}

define i32 @caller(i32 %x) {
entry:
  %r = call i32 @callee(i32 %x)
  %s = add i32 %r, 1
  ret i32 %s
}
"#,
        );
        assert_eq!(
            run_function(&m, "caller", &[5])
                .unwrap()
                .ret
                .unwrap()
                .as_int(),
            16
        );
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let m = module(
            "define void @spin() {\nentry:\n  br label %again\nagain:\n  br label %again\n}",
        );
        let mut interp = Interpreter::new(&m);
        interp.step_limit = 1000;
        assert_eq!(interp.run("spin", &[]).unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn fuel_budget_times_out_instead_of_passing() {
        // Both sides loop forever: under the default limit the double
        // step-limit hit counts as equivalent, under an explicit fuel budget
        // it is a timeout, not a verdict.
        let text =
            "define i32 @f(i32 %x) {\nentry:\n  br label %again\nagain:\n  br label %again\n}";
        let m = module(text);
        assert!(differential_check(&m, &m, "f", 2, 7).is_ok());
        assert_eq!(
            differential_check_with_fuel(&m, &m, "f", 2, 7, Some(64)),
            Err(OracleFailure::Timeout)
        );
        // A terminating function passes under a generous budget and the
        // fuel-less path stays bit-identical to the legacy entry point.
        let t = module("define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}");
        assert!(differential_check_with_fuel(&t, &t, "f", 2, 7, Some(1000)).is_ok());
        assert!(differential_check_with_fuel(&t, &t, "f", 2, 7, None).is_ok());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let m = module("define i32 @d(i32 %x) {\nentry:\n  %r = sdiv i32 %x, 0\n  ret i32 %r\n}");
        assert_eq!(
            run_function(&m, "d", &[5]).unwrap_err(),
            InterpError::DivisionByZero
        );
    }

    #[test]
    fn switch_dispatch() {
        let m = module(
            r#"
define i32 @sw(i32 %x) {
entry:
  switch i32 %x, label %other [ 1: label %one, 2: label %two ]
one:
  ret i32 100
two:
  ret i32 200
other:
  ret i32 0
}
"#,
        );
        assert_eq!(
            run_function(&m, "sw", &[1]).unwrap().ret.unwrap().as_int(),
            100
        );
        assert_eq!(
            run_function(&m, "sw", &[2]).unwrap().ret.unwrap().as_int(),
            200
        );
        assert_eq!(
            run_function(&m, "sw", &[7]).unwrap().ret.unwrap().as_int(),
            0
        );
    }

    #[test]
    fn invoke_continues_on_normal_path() {
        let m = module(
            r#"
define i64 @inv(i64 %x) {
entry:
  %r = invoke i64 @may_throw(i64 %x) to label %ok unwind label %pad
pad:
  %lp = landingpad
  resume ptr %lp
ok:
  %s = add i64 %r, 1
  ret i64 %s
}
"#,
        );
        let out = run_function(&m, "inv", &[2]).unwrap();
        assert_eq!(out.external_calls.len(), 1);
        assert_eq!(out.ret.unwrap().as_int(), out.external_calls[0].result + 1);
    }

    #[test]
    fn check_equivalent_detects_divergence() {
        let a = module("define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}");
        let b = module("define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 2\n  ret i32 %r\n}");
        assert!(check_equivalent(&a, "f", &[1], &a, "f", &[1]).is_ok());
        assert!(check_equivalent(&a, "f", &[1], &b, "f", &[1]).is_err());
    }

    #[test]
    fn equivalence_compares_external_traces() {
        let a = module(
            "define void @f(i64 %x) {\nentry:\n  %r = call i64 @sink(i64 %x)\n  ret void\n}",
        );
        let b =
            module("define void @f(i64 %x) {\nentry:\n  %r = call i64 @sink(i64 0)\n  ret void\n}");
        assert!(check_equivalent(&a, "f", &[5], &b, "f", &[5]).is_err());
        assert!(check_equivalent(&a, "f", &[0], &b, "f", &[0]).is_ok());
    }

    #[test]
    fn undef_reads_as_zero() {
        let m = module("define i32 @u() {\nentry:\n  %r = add i32 undef, 5\n  ret i32 %r\n}");
        assert_eq!(run_function(&m, "u", &[]).unwrap().ret.unwrap().as_int(), 5);
    }

    #[test]
    fn narrow_integers_wrap() {
        let m = module("define i8 @w(i8 %x) {\nentry:\n  %r = add i8 %x, 100\n  ret i8 %r\n}");
        assert_eq!(
            run_function(&m, "w", &[100]).unwrap().ret.unwrap().as_int(),
            -56
        );
    }

    #[test]
    fn differential_check_accepts_identical_and_flags_divergence() {
        let a = module("define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}");
        assert!(differential_check(&a, &a, "f", 4, 7).is_ok());
        // Diverges only away from zero/one; the random samples must find it.
        let b = module(
            "define i32 @f(i32 %x) {\nentry:\n  %c = icmp sgt i32 %x, 1\n  %d = select i1 %c, i32 2, i32 1\n  %r = add i32 %x, %d\n  ret i32 %r\n}",
        );
        let err = differential_check(&a, &b, "f", 8, 7).unwrap_err();
        assert!(err.contains("args"), "{err}");
        assert!(differential_check(&a, &b, "missing", 2, 0).is_err());
    }
}
